"""Lower a :class:`~repro.serve.Deployment` to a :class:`CompiledKernel`.

The compile stage mirrors the paper's QKeras + hls4ml conversion flow in
software: walk the traced netlist of the winning configuration, calibrate
activation ranges on the experiment's own validation split, resolve a
:class:`~repro.hw.fixed_point.FixedPointFormat` per tensor (the paper's
``<16,8>`` by default, per-layer overridable), pre-quantize every
parameter to integer codes, and package the result as an executable
integer kernel plus artifacts the :class:`~repro.api.artifacts.
ArtifactStore` persists resume-safely.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro import nn
from repro.hw.compile.calibrate import (
    DEFAULT_CALIBRATION_ROWS,
    calibration_split,
    observe_ranges,
)
from repro.hw.compile.formats import (
    MASK_FORMAT,
    observed_max,
    tight_for_range,
    widen_for_range,
)
from repro.hw.compile.kernel import CompiledKernel, CompileError, LayerPlan
from repro.hw.fixed_point import FixedPointFormat
from repro.hw.netlist import (
    KIND_ACT,
    KIND_BN,
    KIND_CONV,
    KIND_DROPOUT,
    KIND_LINEAR,
    KIND_POOL,
    trace_network,
)

#: Version stamped into every compiled-kernel artifact.
KERNEL_VERSION = 1

#: JSON artifact holding the kernel record (formats, attrs, plans).
KERNEL_ARTIFACT = "compiled_kernel"

#: ``.npz`` artifact holding the pre-quantized integer tensors.
KERNEL_TENSORS = "kernel_tensors"

#: JSON artifact holding the float-vs-fixed fidelity report.
FIDELITY_ARTIFACT = "fidelity"

#: Layer kinds whose output format is calibrated independently of the
#: input (everything else re-emits its input format: activations, pools
#: and data movement never widen the word on hardware).
_CALIBRATED_KINDS = (KIND_CONV, KIND_LINEAR, KIND_BN, KIND_DROPOUT)


def _quantize_param(array: np.ndarray, fmt: FixedPointFormat):
    """``(codes, mean_abs_error)`` of quantizing ``array`` into ``fmt``."""
    codes = fmt.to_fixed(array)
    error = float(np.mean(np.abs(np.asarray(array, dtype=np.float64)
                                 - codes * fmt.scale)))
    return codes, error


def compile_deployment(
    deployment,
    *,
    calibration_rows: int = DEFAULT_CALIBRATION_ROWS,
    num_samples: Optional[int] = None,
    overrides: Optional[Mapping[str, FixedPointFormat]] = None,
) -> CompiledKernel:
    """Compile ``deployment`` into an executable fixed-point kernel.

    The pipeline: instantiate the winning configuration, trace its
    netlist, replay one Monte-Carlo prediction over the first
    ``calibration_rows`` rows of the experiment's validation split to
    observe per-layer activation ranges (mask scaling included), then
    resolve formats and pre-quantize parameters:

    * activation edges default to the deployment's format (the paper's
      ``<16,8>``) and only trade fraction bits for integer bits when
      the calibrated range overflows;
    * weights, folded batch-norm scales and LeakyReLU slopes get
      *tight* per-tensor formats at the same word width;
    * biases and batch-norm shifts are pre-scaled to the widened
      accumulator's fraction so the integer datapath adds them without
      intermediate rounding;
    * dropout masks quantize to :data:`~repro.hw.compile.formats.
      MASK_FORMAT`.

    Args:
        deployment: a :class:`repro.serve.Deployment`.
        calibration_rows: validation rows used for range calibration.
        num_samples: Monte-Carlo passes during calibration (default:
            the spec's ``mc_samples``).
        overrides: optional per-layer *output* activation formats,
            keyed by traced layer name — the per-layer escape hatch the
            paper's uniform ``<16,8>`` choice does not need but wider
            models might.

    Returns:
        A ready-to-run :class:`CompiledKernel`.

    Raises:
        CompileError: if an override names an unknown layer or a traced
            layer has no integer lowering.
    """
    overrides = dict(overrides or {})
    default = deployment.fixed_point
    model = deployment.instantiate()
    netlist = trace_network(model.model, deployment.input_shape)

    traced_names = {info.name for info in netlist.layers}
    unknown = sorted(set(overrides) - traced_names)
    if unknown:
        raise CompileError(
            f"format overrides name unknown layers {unknown}; traced "
            f"layers are {sorted(traced_names)}")

    images, _ = calibration_split(deployment.spec, rows=calibration_rows)
    ranges = observe_ranges(deployment, model, images,
                            num_samples=num_samples)

    modules = {}
    for path, module in model.model._named_modules():
        modules.setdefault(path.rstrip("."), module)

    plans = []
    for info in netlist.layers:
        module = modules.get(info.name)
        if module is None:
            raise CompileError(
                f"traced layer {info.name!r} not found among named "
                f"modules")
        record = ranges.get(info.name)
        in_max = record.in_max if record else 0.0
        out_max = record.out_max if record else 0.0

        in_format = widen_for_range(in_max, default)
        if info.kind in _CALIBRATED_KINDS:
            out_format = widen_for_range(out_max, default)
        else:
            # Activations, pools and data movement re-emit their input
            # format: the hardware inserts no width converter there.
            out_format = in_format
        if info.name in overrides:
            out_format = overrides[info.name]

        plan = LayerPlan(
            name=info.name,
            kind=info.kind,
            in_shape=info.in_shape,
            out_shape=info.out_shape,
            in_format=in_format,
            out_format=out_format,
            dropout_code=info.dropout_code,
            slot_name=info.slot_name,
        )
        _lower_layer(plan, module, default)
        plans.append(plan)

    return CompiledKernel(deployment, plans)


def _lower_layer(plan: LayerPlan, module, default: FixedPointFormat) -> None:
    """Fill ``plan`` with attrs, formats and pre-quantized tensors."""
    width = default.total_bits
    if plan.kind == KIND_CONV:
        plan.attrs = {"kernel_size": module.kernel_size,
                      "stride": module.stride,
                      "padding": module.padding}
        weight = module.weight.data
        plan.weight_format = tight_for_range(observed_max(weight), width)
        codes, error = _quantize_param(
            weight.reshape(weight.shape[0], -1), plan.weight_format)
        plan.tensors["weight"] = codes
        plan.weight_error = error
        if module.bias is not None:
            plan.tensors["bias"] = _bias_codes(module.bias.data,
                                               plan.accum_fraction)
    elif plan.kind == KIND_LINEAR:
        plan.attrs = {}
        weight = module.weight.data
        plan.weight_format = tight_for_range(observed_max(weight), width)
        codes, error = _quantize_param(weight, plan.weight_format)
        plan.tensors["weight"] = codes
        plan.weight_error = error
        if module.bias is not None:
            plan.tensors["bias"] = _bias_codes(module.bias.data,
                                               plan.accum_fraction)
    elif plan.kind == KIND_BN:
        # Fold inference batch-norm to an affine scale/shift.
        scale = module.weight.data / np.sqrt(module.running_var
                                             + module.eps)
        shift = module.bias.data - module.running_mean * scale
        plan.attrs = {}
        plan.weight_format = tight_for_range(observed_max(scale), width)
        codes, error = _quantize_param(scale, plan.weight_format)
        plan.tensors["scale"] = codes
        plan.weight_error = error
        plan.tensors["shift"] = _bias_codes(shift, plan.accum_fraction)
    elif plan.kind == KIND_ACT:
        plan.attrs = {}
        if isinstance(module, nn.LeakyReLU):
            slope = float(module.negative_slope)
            plan.attrs["negative_slope"] = slope
            plan.weight_format = tight_for_range(abs(slope), width)
            codes, error = _quantize_param(np.float64(slope),
                                           plan.weight_format)
            plan.tensors["slope"] = np.asarray(codes, dtype=np.int64)
            plan.weight_error = error
    elif plan.kind == KIND_POOL:
        plan.attrs = {"kernel_size": module.kernel_size,
                      "stride": module.stride,
                      "padding": module.padding,
                      "average": isinstance(module, nn.AvgPool2d)}
    elif plan.kind == KIND_DROPOUT:
        plan.mask_format = MASK_FORMAT
        plan.attrs = {}


def _bias_codes(bias: np.ndarray, accum_fraction: int) -> np.ndarray:
    """Bias values as integer codes at the accumulator's scale.

    Round-to-nearest-even at ``2**-accum_fraction`` — one LSB of the
    *accumulator*, far below the output format's rounding step, so bias
    quantization never dominates a layer's error.
    """
    scaled = np.asarray(bias, dtype=np.float64) * float(2 ** accum_fraction)
    return np.rint(scaled).astype(np.int64)


# ----------------------------------------------------------------------
# Persistence (ArtifactStore; resume-safe)
# ----------------------------------------------------------------------
def save_kernel(kernel: CompiledKernel, store) -> str:
    """Persist ``kernel`` (record + integer tensors) into ``store``.

    Writes the :data:`KERNEL_ARTIFACT` JSON record and the
    :data:`KERNEL_TENSORS` ``.npz`` (tensor keys namespaced as
    ``<layer>::<tensor>``), and ensures the owning deployment's own
    artifacts exist alongside so the directory round-trips through
    :func:`load_kernel` self-contained.  All writes are atomic.
    """
    from repro.serve.deployment import DEPLOYMENT_ARTIFACT

    if not store.has(DEPLOYMENT_ARTIFACT):
        kernel.deployment.save(store.root)
    record = {
        "kernel_version": KERNEL_VERSION,
        "layers": [plan.to_dict() for plan in kernel.plans],
    }
    tensors: Dict[str, np.ndarray] = {}
    for plan in kernel.plans:
        for key, array in plan.tensors.items():
            tensors[f"{plan.name}::{key}"] = array
    store.save_json(KERNEL_ARTIFACT, record)
    store.save_state(KERNEL_TENSORS, tensors)
    return store.root


def load_kernel(store, deployment=None) -> CompiledKernel:
    """Rebuild a :class:`CompiledKernel` saved by :func:`save_kernel`.

    Args:
        store: the :class:`~repro.api.artifacts.ArtifactStore` (or any
            object with the same interface) the kernel was saved into.
        deployment: optionally the already-loaded owning deployment;
            loaded from the same directory when omitted.
    """
    from repro.serve.deployment import Deployment

    record = store.load_json(KERNEL_ARTIFACT)
    if (not isinstance(record, dict)
            or record.get("kernel_version") != KERNEL_VERSION):
        raise CompileError(
            f"unsupported compiled-kernel record in {store.root}")
    if deployment is None:
        deployment = Deployment.load(store.root)
    tensors = store.load_state(KERNEL_TENSORS)
    grouped: Dict[str, Dict[str, np.ndarray]] = {}
    for key, array in tensors.items():
        layer, _, tensor = key.partition("::")
        grouped.setdefault(layer, {})[tensor] = array
    plans = [LayerPlan.from_dict(entry, grouped.get(entry["name"], {}))
             for entry in record["layers"]]
    return CompiledKernel(deployment, plans)


def compile_and_report(
    deployment,
    store,
    *,
    calibration_rows: int = DEFAULT_CALIBRATION_ROWS,
    fidelity_rows: Optional[int] = None,
    num_samples: Optional[int] = None,
    overrides: Optional[Mapping[str, FixedPointFormat]] = None,
    force: bool = False,
    allow_unsafe: bool = False,
):
    """Compile, certify, measure fidelity, persist — resuming work.

    The one-call entry point the CLI and the pipeline stage share.
    When ``store`` already holds a kernel and a fidelity report (and
    ``force`` is False), both load back instead of recompiling — the
    same resume contract every pipeline stage follows.

    Every fresh compile is statically certified before fidelity is
    measured: the :class:`~repro.analysis.OverflowCertificate` proves
    the int64 accumulators cannot wrap for *any* representable input
    (not only the calibration rows), and persists as the
    :data:`~repro.analysis.CERTIFICATE_ARTIFACT` next to the kernel.
    A ``wrap-possible`` verdict aborts the compile unless
    ``allow_unsafe`` is set — an empirically faithful kernel that can
    silently wrap off-distribution is not a deployable artifact.
    Resumed stores that predate certification are backfilled.

    Returns:
        ``(kernel, report)`` — the executable kernel and its
        :class:`~repro.hw.compile.fidelity.FidelityReport`.

    Raises:
        CompileError: on a ``wrap-possible`` certificate (unless
            ``allow_unsafe``), besides the usual lowering failures.
    """
    from repro.analysis.certify import (
        CERTIFICATE_ARTIFACT,
        certify_kernel,
        save_certificate,
    )
    from repro.hw.compile.fidelity import (
        DEFAULT_FIDELITY_ROWS,
        FidelityReport,
        measure_fidelity,
    )

    if fidelity_rows is None:
        fidelity_rows = DEFAULT_FIDELITY_ROWS
    if (not force and store.has(KERNEL_ARTIFACT)
            and store.has_state(KERNEL_TENSORS)
            and store.has(FIDELITY_ARTIFACT)):
        kernel = load_kernel(store, deployment)
        report = FidelityReport.from_dict(store.load_json(FIDELITY_ARTIFACT))
        if not store.has(CERTIFICATE_ARTIFACT):
            save_certificate(certify_kernel(kernel), store)
        return kernel, report

    kernel = compile_deployment(deployment,
                                calibration_rows=calibration_rows,
                                num_samples=num_samples,
                                overrides=overrides)
    certificate = certify_kernel(kernel)
    if certificate.wrap_possible and not allow_unsafe:
        wrapping = [layer.name for layer in certificate.layers
                    if layer.wrap_possible]
        raise CompileError(
            f"overflow certificate is wrap-possible for layers "
            f"{wrapping}: an int64 accumulator can wrap on "
            f"representable inputs; widen the activation formats or "
            f"pass allow_unsafe=True to persist anyway")
    report = measure_fidelity(kernel, rows=fidelity_rows,
                              num_samples=num_samples)
    save_kernel(kernel, store)
    save_certificate(certificate, store)
    store.save_json(FIDELITY_ARTIFACT, report.to_dict())
    return kernel, report


__all__ = [
    "FIDELITY_ARTIFACT",
    "KERNEL_ARTIFACT",
    "KERNEL_TENSORS",
    "KERNEL_VERSION",
    "compile_and_report",
    "compile_deployment",
    "load_kernel",
    "save_kernel",
]
