"""Per-tensor fixed-point format assignment for the compiler.

The paper deploys every tensor in ``<16,8>`` (Q7.8).  The compiler
keeps that as the *default activation format* and deviates only where
it must or where it is free to:

* **Activations** keep the deployment's default format unless the
  calibrated range overflows it, in which case integer bits grow (at
  the same word width) until the range is representable — the width
  converters hls4ml inserts for exactly this reason.
* **Weights/scales** are fitted *tightly*: the integer field shrinks
  to what the actual parameter range needs and every freed bit becomes
  a fraction bit — standard per-tensor quantization, at the same word
  width the paper uses.

Both policies are overridable per layer through the ``overrides``
mapping accepted by :func:`repro.hw.compile.compile_deployment`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.fixed_point import FixedPointFormat

#: Word width of the widened accumulators (metadata for the emitted
#: ``accum_t``; the numpy executor carries accumulators in int64, which
#: strictly contains this range).
ACCUM_BITS = 32

#: Format of quantized dropout-mask ROM/stream values.  Inverted-dropout
#: masks are ``0`` or ``1/keep``-scaled (a few units at most), so four
#: integer bits cover every design in the zoo while 11 fraction bits
#: keep the mask-scale quantization error an order of magnitude below
#: the activation LSB.
MASK_FORMAT = FixedPointFormat(total_bits=16, fraction_bits=11)


def widen_for_range(max_abs: float,
                    default: FixedPointFormat) -> FixedPointFormat:
    """The default format, with integer bits grown to cover ``max_abs``.

    Keeps ``default`` whenever the observed range fits; otherwise moves
    fraction bits to the integer field (same word width) until the
    range is representable, bottoming out at zero fraction bits (a
    range even that cannot cover simply saturates, like the hardware).
    """
    fmt = default
    while max_abs > fmt.max_value and fmt.fraction_bits > 0:
        fmt = FixedPointFormat(total_bits=fmt.total_bits,
                               fraction_bits=fmt.fraction_bits - 1)
    return fmt


def tight_for_range(max_abs: float, total_bits: int) -> FixedPointFormat:
    """The ``total_bits``-wide format that fits ``max_abs`` most finely.

    Shrinks the integer field to the minimum covering ``max_abs`` and
    gives every remaining bit to the fraction — the per-tensor weight
    format policy.
    """
    fmt = FixedPointFormat(total_bits=total_bits,
                           fraction_bits=total_bits - 1)
    return widen_for_range(max_abs, fmt)


def observed_max(array: np.ndarray) -> float:
    """Largest finite magnitude in ``array`` (0.0 for empty input)."""
    array = np.asarray(array)
    if array.size == 0:
        return 0.0
    return float(np.max(np.abs(array)))


@dataclass(frozen=True)
class ResolvedFormats:
    """The number formats one compiled layer resolved to.

    Attributes:
        activation: output activation format.
        weight: weight format (conv/linear kernels, BN scale, LeakyReLU
            slope); None for parameter-free layers.
        bias: format of bias/shift terms, expressed at the widened
            accumulator scale; None when the layer has none.
        accum: widened accumulator format (MAC trees, mask products);
            None for pure data-movement layers.
    """

    activation: FixedPointFormat
    weight: Optional[FixedPointFormat] = None
    bias: Optional[FixedPointFormat] = None
    accum: Optional[FixedPointFormat] = None

    def to_dict(self) -> dict:
        """JSON-ready view (inverted by :meth:`from_dict`)."""
        def enc(fmt: Optional[FixedPointFormat]):
            if fmt is None:
                return None
            return [fmt.total_bits, fmt.fraction_bits]
        return {"activation": enc(self.activation),
                "weight": enc(self.weight),
                "bias": enc(self.bias),
                "accum": enc(self.accum)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ResolvedFormats":
        """Rebuild from a :meth:`to_dict` payload."""
        def dec(entry):
            if entry is None:
                return None
            return FixedPointFormat(total_bits=int(entry[0]),
                                    fraction_bits=int(entry[1]))
        return cls(activation=dec(payload["activation"]),
                   weight=dec(payload.get("weight")),
                   bias=dec(payload.get("bias")),
                   accum=dec(payload.get("accum")))


def accumulator_format(in_fmt: FixedPointFormat,
                       w_fmt: FixedPointFormat) -> FixedPointFormat:
    """The widened accumulator format of an ``in * w`` MAC tree.

    Products carry ``in.fraction_bits + w.fraction_bits`` fraction bits;
    the accumulator keeps them all in an :data:`ACCUM_BITS`-wide word
    (fraction capped so at least one sign bit remains).
    """
    fraction = min(in_fmt.fraction_bits + w_fmt.fraction_bits,
                   ACCUM_BITS - 1)
    return FixedPointFormat(total_bits=ACCUM_BITS, fraction_bits=fraction)


__all__ = [
    "ACCUM_BITS",
    "MASK_FORMAT",
    "ResolvedFormats",
    "accumulator_format",
    "observed_max",
    "tight_for_range",
    "widen_for_range",
]
