"""Analytic latency and resource model of the HLS accelerator.

Stands in for Vivado-HLS C-synthesis (DESIGN.md substitution table).
The model follows the hls4ml dataflow style the paper builds on: each
arithmetic layer is folded onto ``pe`` multiply-accumulate lanes (a
reuse-factor design), element-wise layers stream through vector lanes,
and dropout slots add the design-specific stalls of
:mod:`repro.hw.dropout_hw`.  Monte-Carlo sampling executes the network
``mc_samples`` times with distinct masks.

Constants are calibrated so the paper's operating points are in range
(XCKU115 @ 181 MHz; ResNet18/CIFAR around 15-19 ms for T=3; resource
mix BRAM-heavy at ~82%, DSP ~5%, FF ~40%), and — more importantly —
so every *relative* ordering the paper reports is reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hw.device import FPGADevice, XCKU115
from repro.hw.dropout_hw import DropoutHWModel, model_dropout_layer
from repro.hw.fixed_point import PAPER_FORMAT, FixedPointFormat
from repro.hw.netlist import (
    KIND_ACT,
    KIND_BN,
    KIND_CONV,
    KIND_DROPOUT,
    KIND_FLATTEN,
    KIND_GPOOL,
    KIND_IDENTITY,
    KIND_LINEAR,
    KIND_POOL,
    LayerInfo,
    Netlist,
)

#: Pipeline fill depth charged once per arithmetic layer.
PIPELINE_DEPTH_CYCLES = 60
#: Control overhead between consecutive Monte-Carlo passes.
INTER_PASS_CYCLES = 200
#: MACs one DSP slice computes per cycle at 16-bit precision.
MACS_PER_DSP = 2
#: Flip-flops charged per MAC lane (accumulators + pipeline registers).
FFS_PER_PE = 600
#: LUTs charged per MAC lane.
LUTS_PER_PE = 420
#: Flip-flops charged per traced layer (stream control).
FFS_PER_LAYER = 1_500
#: LUTs charged per traced layer.
LUTS_PER_LAYER = 1_100
#: Fraction of device FF/LUT consumed by infrastructure (AXI, control).
BASE_FABRIC_FRACTION = 0.03
#: BRAM tiles for the input/output stream buffers.
IO_BUFFER_BRAM = 4


@dataclass(frozen=True)
class AcceleratorConfig:
    """Design-space knobs of the generated accelerator.

    Attributes:
        device: target FPGA part.
        clock_mhz: operating frequency; None uses the device default.
        pe: multiply-accumulate lanes shared by conv/dense layers (the
            inverse of the hls4ml reuse factor).
        vector_lanes: element-wise lanes (activations, pooling, BN).
        dropout_lanes: mask application lanes in dropout units.
        weight_residency: fraction of weights held on-chip; the rest
            streams from off-chip memory in tiles (large models).
        mc_samples: Monte-Carlo forward passes per inference (paper: 3).
        fixed_point: numeric format (paper: ap_fixed<16,8>).
        weight_sparsity: fraction of (structured) zero weights skipped
            by the MAC array and elided from weight storage — the
            "sparsity support for hardware design" named as future work
            in the paper's conclusion.  0.0 reproduces the paper's
            dense designs.
    """

    device: FPGADevice = XCKU115
    clock_mhz: Optional[float] = None
    pe: int = 64
    vector_lanes: int = 8
    dropout_lanes: int = 1
    weight_residency: float = 0.35
    mc_samples: int = 3
    fixed_point: FixedPointFormat = PAPER_FORMAT
    weight_sparsity: float = 0.0

    def __post_init__(self) -> None:
        if self.pe < 1:
            raise ValueError(f"pe must be >= 1, got {self.pe}")
        if self.vector_lanes < 1:
            raise ValueError(
                f"vector_lanes must be >= 1, got {self.vector_lanes}")
        if self.dropout_lanes < 1:
            raise ValueError(
                f"dropout_lanes must be >= 1, got {self.dropout_lanes}")
        if not 0.0 < self.weight_residency <= 1.0:
            raise ValueError(
                f"weight_residency must be in (0, 1], got "
                f"{self.weight_residency}")
        if self.mc_samples < 1:
            raise ValueError(
                f"mc_samples must be >= 1, got {self.mc_samples}")
        if not 0.0 <= self.weight_sparsity < 1.0:
            raise ValueError(
                f"weight_sparsity must be in [0, 1), got "
                f"{self.weight_sparsity}")

    @property
    def effective_clock_mhz(self) -> float:
        """Operating frequency, defaulting to the device's."""
        return float(self.clock_mhz if self.clock_mhz is not None
                     else self.device.default_clock_mhz)


@dataclass
class LayerPerf:
    """Per-layer performance/resource estimate for one forward pass."""

    info: LayerInfo
    cycles: float
    dsp: int = 0
    bram36: int = 0
    ffs: int = 0
    luts: int = 0
    comparator_ops: float = 0.0


@dataclass
class ResourceUsage:
    """Aggregate resource usage of a design."""

    dsp: int
    bram36: int
    ffs: int
    luts: int

    def utilization(self, device: FPGADevice) -> Dict[str, float]:
        """Fractional utilization per resource class on ``device``."""
        return {
            "DSP": self.dsp / device.dsp,
            "BRAM": self.bram36 / device.bram36,
            "FF": self.ffs / device.ffs,
            "LUT": self.luts / device.luts,
        }


@dataclass
class PerfEstimate:
    """Latency/resource estimate of a full MC-dropout inference."""

    layers: List[LayerPerf]
    config: AcceleratorConfig
    cycles_per_pass: float
    total_cycles: float
    resources: ResourceUsage
    comparator_ops_per_inference: float

    @property
    def latency_ms(self) -> float:
        """End-to-end latency of one uncertainty-aware inference."""
        return self.total_cycles / (self.config.effective_clock_mhz * 1e3)

    @property
    def latency_per_pass_ms(self) -> float:
        """Latency of a single Monte-Carlo forward pass."""
        return self.cycles_per_pass / (self.config.effective_clock_mhz * 1e3)

    @property
    def throughput_images_per_s(self) -> float:
        """Uncertainty-aware inferences per second."""
        return 1e3 / self.latency_ms


def _layer_cycles(layer: LayerInfo, cfg: AcceleratorConfig) -> float:
    """Cycles for one layer in one forward pass (dropout handled apart)."""
    if layer.kind in (KIND_CONV, KIND_LINEAR):
        effective_macs = layer.macs * (1.0 - cfg.weight_sparsity)
        return math.ceil(effective_macs / (cfg.pe * 1.0)) + PIPELINE_DEPTH_CYCLES
    if layer.kind in (KIND_BN, KIND_ACT, KIND_POOL, KIND_GPOOL):
        return math.ceil(layer.out_elements / cfg.vector_lanes)
    if layer.kind in (KIND_FLATTEN, KIND_IDENTITY):
        return 0.0
    raise ValueError(f"unhandled layer kind {layer.kind!r}")


def estimate(netlist: Netlist, config: AcceleratorConfig) -> PerfEstimate:
    """Estimate latency and resources for ``netlist`` under ``config``.

    Args:
        netlist: traced network (dropout slots must reflect the active
            configuration).
        config: accelerator design knobs.

    Returns:
        A :class:`PerfEstimate` covering all ``mc_samples`` passes.
    """
    device = config.device
    layer_perfs: List[LayerPerf] = []
    cycles = 0.0
    comparator_ops_pass = 0.0
    extra_ffs = 0
    extra_luts = 0
    mask_bram_bits = 0

    for layer in netlist.layers:
        if layer.kind == KIND_DROPOUT:
            hw: DropoutHWModel = model_dropout_layer(
                layer, lanes=config.dropout_lanes)
            perf = LayerPerf(info=layer, cycles=hw.stall_cycles,
                             ffs=hw.ffs, luts=hw.luts,
                             comparator_ops=hw.comparator_ops)
            comparator_ops_pass += hw.comparator_ops
            extra_ffs += hw.ffs
            extra_luts += hw.luts
            mask_bram_bits += hw.bram_bits
        else:
            perf = LayerPerf(info=layer, cycles=_layer_cycles(layer, config))
        cycles += perf.cycles
        layer_perfs.append(perf)

    total_cycles = (config.mc_samples * cycles
                    + (config.mc_samples - 1) * INTER_PASS_CYCLES)

    # ------------------------------------------------------------------
    # Resources
    # ------------------------------------------------------------------
    weight_bits = (netlist.total_params * config.fixed_point.total_bits
                   * (1.0 - config.weight_sparsity))
    resident_bits = weight_bits * config.weight_residency
    bram_bits_per_tile = 36 * 1024
    weight_bram = math.ceil(resident_bits / bram_bits_per_tile)
    act_bits = netlist.max_activation_elements * config.fixed_point.total_bits
    act_bram = 2 * math.ceil(act_bits / bram_bits_per_tile)
    mask_bram = (math.ceil(mask_bram_bits / bram_bits_per_tile)
                 if mask_bram_bits else 0)
    # Every Masksembles slot occupies at least one physical tile.
    mask_slots = sum(1 for l in netlist.dropout_layers
                     if l.dropout_code == "M")
    mask_bram = max(mask_bram, mask_slots)
    bram = min(weight_bram + act_bram + mask_bram + IO_BUFFER_BRAM,
               device.bram36)

    dsp = min(math.ceil(config.pe / MACS_PER_DSP)
              + 2 * sum(1 for l in netlist.layers if l.kind == KIND_BN),
              device.dsp)
    n_layers = len(netlist.layers)
    ffs = min(int(BASE_FABRIC_FRACTION * device.ffs)
              + config.pe * FFS_PER_PE + n_layers * FFS_PER_LAYER
              + extra_ffs, device.ffs)
    luts = min(int(BASE_FABRIC_FRACTION * device.luts)
               + config.pe * LUTS_PER_PE + n_layers * LUTS_PER_LAYER
               + extra_luts, device.luts)

    return PerfEstimate(
        layers=layer_perfs,
        config=config,
        cycles_per_pass=cycles,
        total_cycles=total_cycles,
        resources=ResourceUsage(dsp=dsp, bram36=bram, ffs=ffs, luts=luts),
        comparator_ops_per_inference=comparator_ops_pass * config.mc_samples,
    )
