"""Accelerator generation (Phase 4 front-end).

Combines tracing, the performance model and the power model into a
single builder, and supplies the latency oracle used during search.
Per-model accelerator presets reproduce the paper's operating points
(e.g. ResNet18 folded onto 552 MAC lanes ~ 276 DSPs ~ 5% of XCKU115).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hw.netlist import Netlist, trace_network
from repro.hw.perf import AcceleratorConfig, PerfEstimate, estimate
from repro.hw.power import PowerBreakdown, estimate_power
from repro.hw.report import SynthesisReport
from repro.nn.module import Module
from repro.search.space import DropoutConfig, config_to_string
from repro.search.supernet import Supernet

#: Calibrated MAC-lane counts per backbone (paper-scale operating
#: points: LeNet ~0.9 ms, VGG11 and ResNet18 in the 15-19 ms band).
MODEL_PE_PRESETS: Dict[str, int] = {
    "lenet": 8,
    "vgg11": 360,
    "resnet18": 552,
}


def recommended_config(model_name: str, *,
                       mc_samples: int = 3,
                       **overrides) -> AcceleratorConfig:
    """The calibrated accelerator configuration for a known backbone.

    Slim CI-scale variants (``*_slim``) share their base model's preset;
    unknown names fall back to the generic default (64 lanes).
    """
    key = model_name.lower()
    if key.endswith("_slim"):
        key = key[: -len("_slim")]
    pe = MODEL_PE_PRESETS.get(key, 64)
    return AcceleratorConfig(pe=pe, mc_samples=mc_samples, **overrides)


@dataclass
class AcceleratorDesign:
    """A fully characterized accelerator for one dropout configuration."""

    name: str
    dropout_config: str
    netlist: Netlist
    perf: PerfEstimate
    power: PowerBreakdown

    @property
    def report(self) -> SynthesisReport:
        """The csynth-style report of the design."""
        return SynthesisReport(
            design_name=self.name,
            dropout_config=self.dropout_config,
            perf=self.perf,
            power=self.power,
        )


class AcceleratorBuilder:
    """Builds :class:`AcceleratorDesign` objects from live models.

    Args:
        config: accelerator design knobs (see
            :func:`recommended_config` for calibrated presets).
    """

    def __init__(self, config: Optional[AcceleratorConfig] = None) -> None:
        self.config = config or AcceleratorConfig()

    def build(self, model: Module, input_shape: Tuple[int, ...], *,
              name: str = "design",
              dropout_config: str = "") -> AcceleratorDesign:
        """Trace ``model`` and characterize the resulting accelerator."""
        netlist = trace_network(model, input_shape)
        perf = estimate(netlist, self.config)
        power = estimate_power(perf)
        return AcceleratorDesign(
            name=name,
            dropout_config=dropout_config,
            netlist=netlist,
            perf=perf,
            power=power,
        )

    def build_for_config(self, supernet: Supernet,
                         input_shape: Tuple[int, ...],
                         config: DropoutConfig, *,
                         name: str = "design") -> AcceleratorDesign:
        """Activate ``config`` on the supernet and characterize it."""
        supernet.set_config(config)
        return self.build(supernet.model, input_shape, name=name,
                          dropout_config=config_to_string(config))

    def latency_oracle(self, supernet: Supernet,
                       input_shape: Tuple[int, ...]):
        """A ``config -> latency_ms`` callable for the search phase.

        This is the *exact* (analytic-simulator) oracle; the GP cost
        model of :mod:`repro.hw.cost_model` provides the fast learned
        alternative the paper uses inside the EA loop.
        """
        def oracle(config: DropoutConfig) -> float:
            design = self.build_for_config(supernet, input_shape, config)
            return design.perf.latency_ms
        return oracle
