"""HLS code generation (hls4ml-style backend for Phase 4)."""

from repro.hw.codegen.emitter import (
    MAX_INLINE_WEIGHTS,
    EmittedProject,
    HLSEmitter,
    emit_hls_project,
)

__all__ = [
    "MAX_INLINE_WEIGHTS",
    "EmittedProject",
    "HLSEmitter",
    "emit_hls_project",
]
