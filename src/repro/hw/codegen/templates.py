"""HLS C++ templates in the hls4ml style (paper Sec. 3.5.2).

The paper extends hls4ml with HLS implementations of the four dropout
designs so heterogeneous dropout networks can be synthesized.  These
templates mirror that structure: one ``nnet_*`` header per layer family
plus ``nnet_dropout.h`` carrying the four dropout units:

* ``bernoulli_dropout`` — a 16-bit Fibonacci LFSR word per element and
  one threshold comparator, fully pipelined (II=1);
* ``random_dropout`` — an extra mode LFSR selects point or channel
  granularity per forward pass;
* ``block_dropout`` — seed bits dilated by a ``BxB`` window through a
  line buffer (the expensive dynamic design);
* ``masksembles_dropout`` — a mask ROM indexed by the Monte-Carlo
  sample counter; no RNG, no comparators.

The emitted code is a faithful phase-4 artifact; synthesis itself is
simulated by :mod:`repro.hw.perf` (see DESIGN.md).
"""

DEFINES_H = """\
#ifndef DEFINES_H_
#define DEFINES_H_

#include <ap_fixed.h>
#include <ap_int.h>

// Paper Sec. 4: 16-bit fixed point, 1 sign + 7 integer + 8 fraction bits.
typedef ap_fixed<{total_bits},{int_bits}> model_default_t;
typedef ap_uint<16> lfsr_state_t;

#define MC_SAMPLES {mc_samples}

{layer_dim_defines}

#endif
"""

NNET_COMMON_H = """\
#ifndef NNET_COMMON_H_
#define NNET_COMMON_H_

#include "ap_fixed.h"

namespace nnet {

struct common_config {
    static const unsigned reuse_factor = 1;
};

// 16-bit Fibonacci LFSR (taps 16,15,13,4) shared by all dynamic
// dropout units.  One step yields one pseudo-random word.
inline lfsr_state_t lfsr_step(lfsr_state_t state) {
    #pragma HLS INLINE
    ap_uint<1> bit = state[15] ^ state[14] ^ state[12] ^ state[3];
    return (state << 1) | bit;
}

} // namespace nnet

#endif
"""

NNET_DENSE_H = """\
#ifndef NNET_DENSE_H_
#define NNET_DENSE_H_

#include "nnet_common.h"

namespace nnet {

template<class data_T, class res_T, typename CONFIG_T>
void dense(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_out],
    const typename CONFIG_T::weight_t weights[CONFIG_T::n_in * CONFIG_T::n_out],
    const typename CONFIG_T::bias_t   biases[CONFIG_T::n_out])
{
    #pragma HLS PIPELINE II=CONFIG_T::reuse_factor
    typename CONFIG_T::accum_t acc[CONFIG_T::n_out];
    #pragma HLS ARRAY_PARTITION variable=acc complete

InitAccum:
    for (unsigned j = 0; j < CONFIG_T::n_out; j++) {
        acc[j] = (typename CONFIG_T::accum_t) biases[j];
    }
Product:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        for (unsigned j = 0; j < CONFIG_T::n_out; j++) {
            acc[j] += data[i] * weights[i * CONFIG_T::n_out + j];
        }
    }
Result:
    for (unsigned j = 0; j < CONFIG_T::n_out; j++) {
        res[j] = (res_T) acc[j];
    }
}

} // namespace nnet

#endif
"""

NNET_CONV2D_H = """\
#ifndef NNET_CONV2D_H_
#define NNET_CONV2D_H_

#include "nnet_common.h"

namespace nnet {

// Line-buffer based 2-D convolution, folded onto CONFIG_T::pe
// multiply-accumulate lanes (reuse-factor style).
template<class data_T, class res_T, typename CONFIG_T>
void conv_2d(
    data_T data[CONFIG_T::in_height * CONFIG_T::in_width * CONFIG_T::n_chan],
    res_T  res[CONFIG_T::out_height * CONFIG_T::out_width * CONFIG_T::n_filt],
    const typename CONFIG_T::weight_t weights[CONFIG_T::filt_height * CONFIG_T::filt_width
                                              * CONFIG_T::n_chan * CONFIG_T::n_filt],
    const typename CONFIG_T::bias_t   biases[CONFIG_T::n_filt])
{
ConvOutRow:
    for (int oh = 0; oh < CONFIG_T::out_height; oh++) {
    ConvOutCol:
        for (int ow = 0; ow < CONFIG_T::out_width; ow++) {
            #pragma HLS PIPELINE II=CONFIG_T::reuse_factor
        ConvFilt:
            for (int ff = 0; ff < CONFIG_T::n_filt; ff++) {
                typename CONFIG_T::accum_t acc = biases[ff];
            ConvChan:
                for (int cc = 0; cc < CONFIG_T::n_chan; cc++) {
                ConvKernel:
                    for (int kh = 0; kh < CONFIG_T::filt_height; kh++) {
                        for (int kw = 0; kw < CONFIG_T::filt_width; kw++) {
                            int ih = oh * CONFIG_T::stride - CONFIG_T::pad + kh;
                            int iw = ow * CONFIG_T::stride - CONFIG_T::pad + kw;
                            if (ih >= 0 && ih < CONFIG_T::in_height &&
                                iw >= 0 && iw < CONFIG_T::in_width) {
                                acc += data[(ih * CONFIG_T::in_width + iw) * CONFIG_T::n_chan + cc]
                                     * weights[((kh * CONFIG_T::filt_width + kw) * CONFIG_T::n_chan + cc)
                                               * CONFIG_T::n_filt + ff];
                            }
                        }
                    }
                }
                res[(oh * CONFIG_T::out_width + ow) * CONFIG_T::n_filt + ff] = (res_T) acc;
            }
        }
    }
}

} // namespace nnet

#endif
"""

NNET_POOLING_H = """\
#ifndef NNET_POOLING_H_
#define NNET_POOLING_H_

#include "nnet_common.h"

namespace nnet {

template<class data_T, class res_T, typename CONFIG_T>
void max_pool_2d(
    data_T data[CONFIG_T::in_height * CONFIG_T::in_width * CONFIG_T::n_chan],
    res_T  res[CONFIG_T::out_height * CONFIG_T::out_width * CONFIG_T::n_chan])
{
PoolRow:
    for (int oh = 0; oh < CONFIG_T::out_height; oh++) {
    PoolCol:
        for (int ow = 0; ow < CONFIG_T::out_width; ow++) {
            #pragma HLS PIPELINE
        PoolChan:
            for (int cc = 0; cc < CONFIG_T::n_chan; cc++) {
                data_T best = data[((oh * CONFIG_T::pool_size) * CONFIG_T::in_width
                                    + ow * CONFIG_T::pool_size) * CONFIG_T::n_chan + cc];
                for (int ph = 0; ph < CONFIG_T::pool_size; ph++) {
                    for (int pw = 0; pw < CONFIG_T::pool_size; pw++) {
                        data_T v = data[((oh * CONFIG_T::pool_size + ph) * CONFIG_T::in_width
                                         + ow * CONFIG_T::pool_size + pw) * CONFIG_T::n_chan + cc];
                        if (v > best) best = v;
                    }
                }
                res[(oh * CONFIG_T::out_width + ow) * CONFIG_T::n_chan + cc] = (res_T) best;
            }
        }
    }
}

template<class data_T, class res_T, typename CONFIG_T>
void global_avg_pool_2d(
    data_T data[CONFIG_T::in_height * CONFIG_T::in_width * CONFIG_T::n_chan],
    res_T  res[CONFIG_T::n_chan])
{
GapChan:
    for (int cc = 0; cc < CONFIG_T::n_chan; cc++) {
        #pragma HLS PIPELINE
        typename CONFIG_T::accum_t acc = 0;
        for (int i = 0; i < CONFIG_T::in_height * CONFIG_T::in_width; i++) {
            acc += data[i * CONFIG_T::n_chan + cc];
        }
        res[cc] = (res_T)(acc / (CONFIG_T::in_height * CONFIG_T::in_width));
    }
}

} // namespace nnet

#endif
"""

NNET_BATCHNORM_H = """\
#ifndef NNET_BATCHNORM_H_
#define NNET_BATCHNORM_H_

#include "nnet_common.h"

namespace nnet {

// Inference-time batch norm folded to one scale and one shift per
// channel: y = x * scale[c] + shift[c].
template<class data_T, class res_T, typename CONFIG_T>
void normalize(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_in],
    const typename CONFIG_T::scale_t scale[CONFIG_T::n_chan],
    const typename CONFIG_T::bias_t  shift[CONFIG_T::n_chan])
{
Normalize:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE
        unsigned c = i % CONFIG_T::n_chan;
        res[i] = (res_T)(data[i] * scale[c] + shift[c]);
    }
}

} // namespace nnet

#endif
"""

NNET_ACTIVATION_H = """\
#ifndef NNET_ACTIVATION_H_
#define NNET_ACTIVATION_H_

#include "nnet_common.h"

namespace nnet {

template<class data_T, class res_T, typename CONFIG_T>
void relu(data_T data[CONFIG_T::n_in], res_T res[CONFIG_T::n_in]) {
ReLU:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE
        res[i] = data[i] > (data_T) 0 ? (res_T) data[i] : (res_T) 0;
    }
}

} // namespace nnet

#endif
"""

NNET_DROPOUT_H = """\
#ifndef NNET_DROPOUT_H_
#define NNET_DROPOUT_H_

#include "nnet_common.h"

// ---------------------------------------------------------------------
// FPGA implementations of the four dropout designs (paper contribution
// 3): Bernoulli, Random, Block and Masksembles.  All units operate on
// the flattened activation stream of the preceding layer and are
// inverted-dropout scaled so no extra normalization is needed.
// ---------------------------------------------------------------------

namespace nnet {

// ---------------------------------------------------------------------
// Bernoulli dropout: one LFSR word + one comparator per element.  The
// comparison threshold encodes the keep probability in 16-bit fixed
// point; mask generation overlaps the activation stream (II=1), adding
// no stall cycles (paper Table 1: matches Masksembles latency).
// ---------------------------------------------------------------------
template<class data_T, class res_T, typename CONFIG_T>
void bernoulli_dropout(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_in],
    lfsr_state_t &state)
{
    const ap_uint<16> threshold = CONFIG_T::keep_threshold;  // keep_prob * 65535
Bernoulli:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE II=1
        state = lfsr_step(state);
        bool keep = (ap_uint<16>) state < threshold;
        res[i] = keep ? (res_T)(data[i] * (typename CONFIG_T::scale_t) CONFIG_T::inv_keep)
                      : (res_T) 0;
    }
}

// ---------------------------------------------------------------------
// Random dropout: a per-pass mode bit selects point or channel
// granularity.  The channel path needs a second comparator level and a
// per-channel mask register, which breaks the stream fusion and stalls
// roughly one cycle per element.
// ---------------------------------------------------------------------
template<class data_T, class res_T, typename CONFIG_T>
void random_dropout(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_in],
    lfsr_state_t &state,
    lfsr_state_t &mode_state)
{
    mode_state = lfsr_step(mode_state);
    const bool channel_mode = mode_state[0];
    const ap_uint<16> threshold = CONFIG_T::keep_threshold;

    ap_uint<1> chan_mask[CONFIG_T::n_chan];
ChannelMask:
    for (unsigned c = 0; c < CONFIG_T::n_chan; c++) {
        #pragma HLS PIPELINE II=1
        state = lfsr_step(state);
        chan_mask[c] = ((ap_uint<16>) state < threshold) ? 1 : 0;
    }
Random:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE II=2
        state = lfsr_step(state);
        bool keep;
        if (channel_mode) {
            keep = chan_mask[i % CONFIG_T::n_chan];
        } else {
            keep = (ap_uint<16>) state < threshold;
        }
        res[i] = keep ? (res_T)(data[i] * (typename CONFIG_T::scale_t) CONFIG_T::inv_keep)
                      : (res_T) 0;
    }
}

// ---------------------------------------------------------------------
// Block dropout (DropBlock): seed bits are drawn at gamma-adjusted
// rate and dilated by a block_size x block_size window through a line
// buffer, dropping contiguous patches of every feature map.
// ---------------------------------------------------------------------
template<class data_T, class res_T, typename CONFIG_T>
void block_dropout(
    data_T data[CONFIG_T::height * CONFIG_T::width * CONFIG_T::n_chan],
    res_T  res[CONFIG_T::height * CONFIG_T::width * CONFIG_T::n_chan],
    lfsr_state_t &state)
{
    const ap_uint<16> gamma_threshold = CONFIG_T::gamma_threshold;

    static ap_uint<1> seed_buf[CONFIG_T::height * CONFIG_T::width];
    #pragma HLS ARRAY_PARTITION variable=seed_buf cyclic factor=CONFIG_T::block_size

BlockChan:
    for (unsigned c = 0; c < CONFIG_T::n_chan; c++) {
    SeedGen:
        for (unsigned i = 0; i < CONFIG_T::height * CONFIG_T::width; i++) {
            #pragma HLS PIPELINE II=1
            state = lfsr_step(state);
            seed_buf[i] = ((ap_uint<16>) state < gamma_threshold) ? 1 : 0;
        }
    Dilate:
        for (int h = 0; h < CONFIG_T::height; h++) {
            for (int w = 0; w < CONFIG_T::width; w++) {
                #pragma HLS PIPELINE II=2
                ap_uint<1> drop = 0;
            Window:
                for (int bh = 0; bh < CONFIG_T::block_size; bh++) {
                    for (int bw = 0; bw < CONFIG_T::block_size; bw++) {
                        int sh = h - bh;
                        int sw = w - bw;
                        if (sh >= 0 && sw >= 0) {
                            drop |= seed_buf[sh * CONFIG_T::width + sw];
                        }
                    }
                }
                unsigned idx = (h * CONFIG_T::width + w) * CONFIG_T::n_chan + c;
                res[idx] = drop ? (res_T) 0
                                : (res_T)(data[idx] * (typename CONFIG_T::scale_t) CONFIG_T::inv_keep);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Gaussian dropout (extension design, see repro.dropout.gaussian):
// multiplicative N(1, sigma^2) noise.  The Gaussian generator sums
// four LFSR words (central-limit approximation, as in VIBNN's RNG) and
// multiplies the activation — no comparator on the datapath.
// ---------------------------------------------------------------------
template<class data_T, class res_T, typename CONFIG_T>
void gaussian_dropout(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_in],
    lfsr_state_t &state)
{
Gaussian:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE II=1
        ap_int<18> acc = 0;
    CLT:
        for (unsigned k = 0; k < 4; k++) {
            state = lfsr_step(state);
            acc += (ap_int<18>)(ap_int<16>) state;
        }
        // acc/4 approximates N(0, sigma_lfsr); scale to the configured
        // sigma and shift to mean 1.0 in fixed point.
        typename CONFIG_T::scale_t noise =
            (typename CONFIG_T::scale_t) 1.0
            + (typename CONFIG_T::scale_t)(acc >> 2)
              * (typename CONFIG_T::scale_t) CONFIG_T::sigma_lsb;
        res[i] = (res_T)(data[i] * noise);
    }
}

// ---------------------------------------------------------------------
// Masksembles: masks generated OFFLINE and stored in a BRAM ROM; the
// Monte-Carlo sample counter selects the active mask.  No RNG and no
// comparators on the datapath — a single AND gate per element (paper
// Fig. 1: static / mask generated offline).
// ---------------------------------------------------------------------
template<class data_T, class res_T, typename CONFIG_T>
void masksembles_dropout(
    data_T data[CONFIG_T::n_in],
    res_T  res[CONFIG_T::n_in],
    const ap_uint<1> mask_rom[CONFIG_T::num_masks][CONFIG_T::n_chan],
    unsigned sample_index)
{
    const unsigned m = sample_index % CONFIG_T::num_masks;
Masksembles:
    for (unsigned i = 0; i < CONFIG_T::n_in; i++) {
        #pragma HLS PIPELINE II=1
        unsigned c = i % CONFIG_T::n_chan;
        res[i] = mask_rom[m][c]
               ? (res_T)(data[i] * (typename CONFIG_T::scale_t) CONFIG_T::inv_keep)
               : (res_T) 0;
    }
}

} // namespace nnet

#endif
"""

TOP_CPP = """\
#include "{project}.h"

// Auto-generated top level: {design_name} [{dropout_config}]
// {num_layers} layers, MC_SAMPLES Monte-Carlo passes per inference.

void {project}(
    model_default_t input[N_INPUT],
    model_default_t output[MC_SAMPLES][N_OUTPUT])
{{
    #pragma HLS INTERFACE ap_memory port=input
    #pragma HLS INTERFACE ap_memory port=output
    #pragma HLS DATAFLOW

    static lfsr_state_t lfsr_state = 0xACE1;
    static lfsr_state_t mode_state = 0xBEEF;

MCSample:
    for (unsigned t = 0; t < MC_SAMPLES; t++) {{
{body}
    }}
}}
"""

TOP_H = """\
#ifndef {guard}_H_
#define {guard}_H_

#include "defines.h"
#include "nnet_utils/nnet_common.h"
#include "nnet_utils/nnet_dense.h"
#include "nnet_utils/nnet_conv2d.h"
#include "nnet_utils/nnet_pooling.h"
#include "nnet_utils/nnet_batchnorm.h"
#include "nnet_utils/nnet_activation.h"
#include "nnet_utils/nnet_dropout.h"
#include "parameters.h"

void {project}(
    model_default_t input[N_INPUT],
    model_default_t output[MC_SAMPLES][N_OUTPUT]);

#endif
"""

TESTBENCH_CPP = """\
#include <cstdio>
#include "../firmware/{project}.h"

// Drives the accelerator with a single input frame and prints the
// Monte-Carlo output samples; softmax averaging happens host-side.
int main() {{
    static model_default_t input[N_INPUT];
    static model_default_t output[MC_SAMPLES][N_OUTPUT];

    for (unsigned i = 0; i < N_INPUT; i++) {{
        input[i] = (model_default_t)((i % 17) * 0.0625);
    }}

    {project}(input, output);

    for (unsigned t = 0; t < MC_SAMPLES; t++) {{
        printf("sample %u:", t);
        for (unsigned j = 0; j < N_OUTPUT; j++) {{
            printf(" %f", (double) output[t][j]);
        }}
        printf("\\n");
    }}
    return 0;
}}
"""

BUILD_TCL = """\
# Auto-generated Vivado-HLS build script for {project}
open_project {project}_prj
set_top {project}
add_files firmware/{project}.cpp
add_files -tb tb/{project}_test.cpp
open_solution "solution1"
set_part {{{part}}}
create_clock -period {period_ns} -name default
csim_design
csynth_design
export_design -format ip_catalog
exit
"""
