"""HLS project emission — the hls4ml-style backend of Phase 4.

Given a characterized :class:`~repro.hw.accelerator.AcceleratorDesign`
(and optionally the live model for real weights), writes a complete HLS
project directory:

.. code-block:: text

    <outdir>/
      firmware/
        defines.h  parameters.h  <project>.h  <project>.cpp
        nnet_utils/nnet_*.h       (incl. the four dropout designs)
        weights/w<k>.h            (quantized, size-capped)
      tb/<project>_test.cpp
      build_prj.tcl
      reports/csynth.rpt          (the analytic synthesis report)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

import numpy as np

from repro.hw.accelerator import AcceleratorDesign
from repro.hw.codegen import templates
from repro.hw.fixed_point import FixedPointFormat
from repro.hw.netlist import (
    KIND_ACT,
    KIND_BN,
    KIND_CONV,
    KIND_DROPOUT,
    KIND_FLATTEN,
    KIND_GPOOL,
    KIND_IDENTITY,
    KIND_LINEAR,
    KIND_POOL,
    LayerInfo,
)
from repro.nn.module import Module

#: Weight arrays above this many scalars are stored as ``.npy`` next to
#: the firmware instead of being inlined into a C header.
MAX_INLINE_WEIGHTS = 65_536

_STATIC_HEADERS = {
    "nnet_common.h": templates.NNET_COMMON_H,
    "nnet_dense.h": templates.NNET_DENSE_H,
    "nnet_conv2d.h": templates.NNET_CONV2D_H,
    "nnet_pooling.h": templates.NNET_POOLING_H,
    "nnet_batchnorm.h": templates.NNET_BATCHNORM_H,
    "nnet_activation.h": templates.NNET_ACTIVATION_H,
    "nnet_dropout.h": templates.NNET_DROPOUT_H,
}

_DROPOUT_CALL = {
    "B": "nnet::bernoulli_dropout<model_default_t, model_default_t, "
         "config{idx}>(buf{src}, buf{dst}, lfsr_state);",
    "R": "nnet::random_dropout<model_default_t, model_default_t, "
         "config{idx}>(buf{src}, buf{dst}, lfsr_state, mode_state);",
    "K": "nnet::block_dropout<model_default_t, model_default_t, "
         "config{idx}>(buf{src}, buf{dst}, lfsr_state);",
    "M": "nnet::masksembles_dropout<model_default_t, model_default_t, "
         "config{idx}>(buf{src}, buf{dst}, mask_rom_{idx}, t);",
    "G": "nnet::gaussian_dropout<model_default_t, model_default_t, "
         "config{idx}>(buf{src}, buf{dst}, lfsr_state);",
}


@dataclass
class EmittedProject:
    """Paths and metadata of an emitted HLS project."""

    root: str
    project_name: str
    files: List[str] = field(default_factory=list)

    def relative_files(self) -> List[str]:
        """Emitted files relative to the project root."""
        return [os.path.relpath(f, self.root) for f in self.files]


class HLSEmitter:
    """Writes an HLS project for one accelerator design.

    Args:
        project_name: base name of the generated top function/files.
    """

    def __init__(self, project_name: str = "myproject") -> None:
        if not project_name.isidentifier():
            raise ValueError(
                f"project_name must be a C identifier, got "
                f"{project_name!r}")
        self.project_name = project_name

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def emit(self, design: AcceleratorDesign, outdir: str, *,
             model: Optional[Module] = None,
             formats: Optional[Mapping[str, object]] = None,
             certificate=None) -> EmittedProject:
        """Write the complete project under ``outdir``.

        Args:
            design: the characterized accelerator.
            model: optional live model; enables real quantized weights.
            formats: optional per-layer resolved number formats, keyed
                by traced layer name — the record a compiled kernel
                returns from :meth:`repro.hw.compile.CompiledKernel.
                resolved_formats`.  When given, the emitted
                ``parameters.h`` typedefs and weight headers use each
                layer's calibrated formats instead of the uniform
                model default, so the templates and the executable
                kernel agree bit-for-bit on number formats.
            certificate: optional
                :class:`~repro.analysis.OverflowCertificate` of the
                compiled kernel.  Its per-layer proven-safe widths
                override the ``accum_t`` typedefs, so the emitted
                accumulators are exactly as wide as the worst-case
                proof requires (the calibrated ``formats`` record is
                empirical; the certificate is a guarantee).
        """
        accums = certificate.accum_formats() if certificate else None
        project = EmittedProject(root=outdir, project_name=self.project_name)
        fw = os.path.join(outdir, "firmware")
        os.makedirs(os.path.join(fw, "nnet_utils"), exist_ok=True)
        os.makedirs(os.path.join(fw, "weights"), exist_ok=True)
        os.makedirs(os.path.join(outdir, "tb"), exist_ok=True)
        os.makedirs(os.path.join(outdir, "reports"), exist_ok=True)

        fmt = design.perf.config.fixed_point
        self._write(project, os.path.join(fw, "defines.h"),
                    self._render_defines(design, fmt))
        self._write(project, os.path.join(fw, "parameters.h"),
                    self._render_parameters(design, fmt,
                                            formats=formats,
                                            accums=accums))
        for name, content in _STATIC_HEADERS.items():
            self._write(project,
                        os.path.join(fw, "nnet_utils", name), content)
        self._write(project, os.path.join(fw, f"{self.project_name}.h"),
                    templates.TOP_H.format(
                        guard=self.project_name.upper(),
                        project=self.project_name))
        self._write(project, os.path.join(fw, f"{self.project_name}.cpp"),
                    self._render_top(design))
        if model is not None:
            self._emit_weights(project, fw, model, fmt, formats=formats)
        self._write(project,
                    os.path.join(outdir, "tb", f"{self.project_name}_test.cpp"),
                    templates.TESTBENCH_CPP.format(project=self.project_name))
        clock_mhz = design.perf.config.effective_clock_mhz
        self._write(project, os.path.join(outdir, "build_prj.tcl"),
                    templates.BUILD_TCL.format(
                        project=self.project_name,
                        part=self._part_string(design),
                        period_ns=f"{1000.0 / clock_mhz:.2f}"))
        self._write(project, os.path.join(outdir, "reports", "csynth.rpt"),
                    design.report.render() + "\n")
        return project

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    @staticmethod
    def _part_string(design: AcceleratorDesign) -> str:
        name = design.perf.config.device.name.lower()
        if "xcku115" in name:
            return "xcku115-flvb2104-2-i"
        return name.replace(" ", "-")

    def _write(self, project: EmittedProject, path: str,
               content: str) -> None:
        with open(path, "w") as handle:
            handle.write(content)
        project.files.append(path)

    def _render_defines(self, design: AcceleratorDesign,
                        fmt: FixedPointFormat) -> str:
        dims = [
            f"#define N_INPUT {int(np.prod(design.netlist.input_shape))}",
            f"#define N_OUTPUT "
            f"{design.netlist.layers[-1].out_elements}",
        ]
        for i, layer in enumerate(design.netlist.layers):
            dims.append(f"#define L{i}_N_IN  {layer.in_elements}")
            dims.append(f"#define L{i}_N_OUT {layer.out_elements}")
        return templates.DEFINES_H.format(
            total_bits=fmt.total_bits,
            int_bits=fmt.integer_bits + 1,
            mc_samples=design.perf.config.mc_samples,
            layer_dim_defines="\n".join(dims))

    def _render_parameters(self, design: AcceleratorDesign,
                           fmt: FixedPointFormat, *,
                           formats: Optional[Mapping[str, object]] = None,
                           accums: Optional[Mapping[str, object]] = None
                           ) -> str:
        blocks = ["#ifndef PARAMETERS_H_", "#define PARAMETERS_H_", "",
                  '#include "defines.h"', ""]
        for i, layer in enumerate(design.netlist.layers):
            resolved = formats.get(layer.name) if formats else None
            accum = accums.get(layer.name) if accums else None
            blocks.append(self._layer_config_struct(i, layer,
                                                    resolved=resolved,
                                                    accum=accum))
        blocks += ["#endif", ""]
        return "\n".join(blocks)

    @staticmethod
    def _layer_config_struct(idx: int, layer: LayerInfo,
                             resolved=None, accum=None) -> str:
        lines = [f"// {layer.name} ({layer.kind})",
                 f"struct config{idx} : nnet::common_config {{"]
        lines.append(f"    static const unsigned n_in = {layer.in_elements};")
        lines.append(
            f"    static const unsigned n_out = {layer.out_elements};")
        if len(layer.in_shape) == 3:
            c, h, w = layer.in_shape
            lines.append(f"    static const unsigned n_chan = {c};")
            lines.append(f"    static const unsigned in_height = {h};")
            lines.append(f"    static const unsigned in_width = {w};")
            lines.append(f"    static const unsigned height = {h};")
            lines.append(f"    static const unsigned width = {w};")
        if len(layer.out_shape) == 3:
            oc, oh, ow = layer.out_shape
            lines.append(f"    static const unsigned n_filt = {oc};")
            lines.append(f"    static const unsigned out_height = {oh};")
            lines.append(f"    static const unsigned out_width = {ow};")
        if layer.kind == KIND_DROPOUT and layer.dropout_code is not None:
            keep = 0.75  # default keep probability of the dynamic designs
            lines.append("    // dropout configuration")
            lines.append(
                f"    static const unsigned keep_threshold = "
                f"{int(keep * 65535)};")
            lines.append(
                f"    static const unsigned gamma_threshold = "
                f"{int(0.08 * 65535)};")
            lines.append("    static const unsigned block_size = 3;")
            lines.append("    static const unsigned num_masks = 4;")
            lines.append(
                f"    static constexpr double inv_keep = {1.0 / keep:.6f};")
            lines.append(
                "    static constexpr double sigma_lsb = 0.000122;")
        # Compiled per-layer formats (repro.hw.compile) override the
        # uniform model default when provided.
        weight_t = bias_t = scale_t = "model_default_t"
        accum_t = "ap_fixed<32,16>"
        result_t = None
        if resolved is not None:
            if resolved.weight is not None:
                weight_t = scale_t = str(resolved.weight)
            if resolved.bias is not None:
                bias_t = str(resolved.bias)
            if resolved.accum is not None:
                accum_t = str(resolved.accum)
            result_t = str(resolved.activation)
        if accum is not None:
            # The certificate's proven-safe width beats the calibrated
            # (empirical) accumulator format.
            accum_t = str(accum)
        lines.append(f"    typedef {weight_t} weight_t;")
        lines.append(f"    typedef {bias_t} bias_t;")
        lines.append(f"    typedef {scale_t} scale_t;")
        lines.append(f"    typedef {accum_t} accum_t;")
        if result_t is not None:
            lines.append(f"    typedef {result_t} result_t;")
        lines.append("    static const unsigned pool_size = 2;")
        lines.append("    static const unsigned filt_height = 3;")
        lines.append("    static const unsigned filt_width = 3;")
        lines.append("    static const unsigned stride = 1;")
        lines.append("    static const unsigned pad = 1;")
        lines.append("};")
        lines.append("")
        return "\n".join(lines)

    def _render_top(self, design: AcceleratorDesign) -> str:
        body_lines: List[str] = []
        buf = 0
        for i, layer in enumerate(design.netlist.layers):
            src, dst = buf, buf + 1
            call = self._layer_call(i, layer, src, dst)
            if call is None:
                continue
            body_lines.append(
                f"        static model_default_t buf{dst}"
                f"[L{i}_N_OUT];")
            body_lines.append(f"        {call}")
            buf += 1
        body_lines.append(
            "        for (unsigned j = 0; j < N_OUTPUT; j++) "
            f"output[t][j] = buf{buf}[j];")
        # The very first buffer is the input.
        body = "\n".join(body_lines).replace("buf0", "input")
        return templates.TOP_CPP.format(
            project=self.project_name,
            design_name=design.name,
            dropout_config=design.dropout_config or "-",
            num_layers=len(design.netlist.layers),
            body=body)

    @staticmethod
    def _layer_call(idx: int, layer: LayerInfo, src: int,
                    dst: int) -> Optional[str]:
        args = {"idx": idx, "src": src, "dst": dst}
        if layer.kind == KIND_CONV:
            return ("nnet::conv_2d<model_default_t, model_default_t, "
                    "config{idx}>(buf{src}, buf{dst}, w{idx}, b{idx});"
                    ).format(**args)
        if layer.kind == KIND_LINEAR:
            return ("nnet::dense<model_default_t, model_default_t, "
                    "config{idx}>(buf{src}, buf{dst}, w{idx}, b{idx});"
                    ).format(**args)
        if layer.kind == KIND_BN:
            return ("nnet::normalize<model_default_t, model_default_t, "
                    "config{idx}>(buf{src}, buf{dst}, s{idx}, sh{idx});"
                    ).format(**args)
        if layer.kind == KIND_ACT:
            return ("nnet::relu<model_default_t, model_default_t, "
                    "config{idx}>(buf{src}, buf{dst});").format(**args)
        if layer.kind == KIND_POOL:
            return ("nnet::max_pool_2d<model_default_t, model_default_t, "
                    "config{idx}>(buf{src}, buf{dst});").format(**args)
        if layer.kind == KIND_GPOOL:
            return ("nnet::global_avg_pool_2d<model_default_t, "
                    "model_default_t, config{idx}>(buf{src}, buf{dst});"
                    ).format(**args)
        if layer.kind == KIND_DROPOUT:
            if layer.dropout_code is None:
                return None
            call = _DROPOUT_CALL.get(layer.dropout_code)
            if call is None:
                raise KeyError(
                    f"no HLS template registered for dropout design "
                    f"{layer.dropout_code!r}; extend "
                    f"repro.hw.codegen.emitter._DROPOUT_CALL and "
                    f"templates.NNET_DROPOUT_H")
            return call.format(**args)
        if layer.kind in (KIND_FLATTEN, KIND_IDENTITY):
            return None
        raise ValueError(f"unhandled layer kind {layer.kind!r}")

    @staticmethod
    def _param_format(name: str, default: FixedPointFormat,
                      formats: Optional[Mapping[str, object]]
                      ) -> FixedPointFormat:
        """The format parameter ``name`` quantizes to.

        ``name`` is a dotted parameter path (``conv1.weight``); its
        layer's resolved weight format applies when the compiled record
        provides one, otherwise the uniform default.
        """
        if formats:
            layer, _, _kind = name.rpartition(".")
            resolved = formats.get(layer)
            if resolved is not None and resolved.weight is not None:
                return resolved.weight
        return default

    def _emit_weights(self, project: EmittedProject, fw_dir: str,
                      model: Module, fmt: FixedPointFormat, *,
                      formats: Optional[Mapping[str, object]] = None
                      ) -> None:
        """Quantize model parameters and write weight headers."""
        for k, (name, param) in enumerate(model.named_parameters()):
            param_fmt = self._param_format(name, fmt, formats)
            codes = param_fmt.to_fixed(param.data).ravel()
            path = os.path.join(fw_dir, "weights", f"w{k}.h")
            if codes.size > MAX_INLINE_WEIGHTS:
                npy_path = os.path.join(fw_dir, "weights", f"w{k}.npy")
                np.save(npy_path, codes.astype(np.int16))
                content = (
                    f"// {name}: {codes.size} values exceed the inline "
                    f"limit ({MAX_INLINE_WEIGHTS}); quantized codes "
                    f"stored in w{k}.npy (load via $readmem-style "
                    f"initialization).\n")
                project.files.append(npy_path)
            else:
                values = ", ".join(str(int(v)) for v in codes)
                content = (
                    f"// {name} quantized to {param_fmt} "
                    f"({codes.size} values)\n"
                    f"static const short w{k}_codes[{codes.size}] = "
                    f"{{{values}}};\n")
            self._write(project, path, content)


def emit_hls_project(design: AcceleratorDesign, outdir: str, *,
                     model: Optional[Module] = None,
                     formats: Optional[Mapping[str, object]] = None,
                     certificate=None,
                     project_name: str = "myproject") -> EmittedProject:
    """Convenience wrapper: emit ``design`` as an HLS project.

    ``formats`` takes a compiled kernel's
    :meth:`~repro.hw.compile.CompiledKernel.resolved_formats` record to
    emit calibrated per-layer number formats; ``certificate`` takes the
    kernel's :class:`~repro.analysis.OverflowCertificate` to pin the
    ``accum_t`` typedefs to the proven-safe widths (see
    :meth:`HLSEmitter.emit`).
    """
    return HLSEmitter(project_name).emit(design, outdir, model=model,
                                         formats=formats,
                                         certificate=certificate)
