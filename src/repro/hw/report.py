"""C-synthesis-style reports (the stand-in for Vivado-HLS csynth output).

The paper reads latency, resource utilization and power from Vivado-HLS
C-synthesis reports and the Vivado post-route power report; this module
renders the analytic model's numbers in the same shape so downstream
code (tables, code generation, docs) has one canonical record type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.compile.fidelity import FidelityReport
from repro.hw.perf import AcceleratorConfig, PerfEstimate
from repro.hw.power import PowerBreakdown, energy_per_image_j

__all__ = ["FidelityReport", "SynthesisReport"]


@dataclass
class SynthesisReport:
    """Everything the flow reports about one generated accelerator.

    Attributes:
        design_name: model name, e.g. ``resnet18``.
        dropout_config: Table-2 notation of the dropout configuration.
        perf: latency/resource estimate.
        power: power breakdown.
    """

    design_name: str
    dropout_config: str
    perf: PerfEstimate
    power: PowerBreakdown

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------
    @property
    def latency_ms(self) -> float:
        """End-to-end latency of one uncertainty-aware inference."""
        return self.perf.latency_ms

    @property
    def total_power_w(self) -> float:
        """Total on-chip power in watts."""
        return self.power.total

    @property
    def energy_per_image_j(self) -> float:
        """Energy per inference in joules (Table-3 metric)."""
        return energy_per_image_j(self.perf, self.power)

    @property
    def clock_mhz(self) -> float:
        """Operating frequency."""
        return self.perf.config.effective_clock_mhz

    def utilization_percent(self) -> Dict[str, float]:
        """Resource utilization in percent, keyed BRAM/DSP/FF/LUT."""
        util = self.perf.resources.utilization(self.perf.config.device)
        return {k: 100.0 * v for k, v in util.items()}

    def summary_row(self) -> Dict[str, float]:
        """Flat row used by the benchmark tables."""
        util = self.utilization_percent()
        return {
            "config": self.dropout_config,
            "latency_ms": self.latency_ms,
            "power_w": self.total_power_w,
            "energy_j": self.energy_per_image_j,
            "bram_pct": util["BRAM"],
            "dsp_pct": util["DSP"],
            "ff_pct": util["FF"],
            "lut_pct": util["LUT"],
        }

    def to_dict(self) -> Dict[str, object]:
        """Full machine-readable view of the report (JSON-ready).

        One-way serialization: the analytic ``perf``/``power`` objects
        are flattened into plain numbers, mirroring how a csynth XML
        report would be scraped.  Used by the ``repro.api``
        :class:`~repro.api.artifacts.ArtifactStore` to persist
        generation-phase artifacts.
        """
        cfg: AcceleratorConfig = self.perf.config
        res = self.perf.resources
        dev = cfg.device
        return {
            "design_name": self.design_name,
            "dropout_config": self.dropout_config,
            "device": dev.name,
            "technology_nm": int(dev.technology_nm),
            "clock_mhz": float(self.clock_mhz),
            "precision": str(cfg.fixed_point),
            "mc_samples": int(cfg.mc_samples),
            "timing": {
                "cycles_per_pass": float(self.perf.cycles_per_pass),
                "total_cycles": float(self.perf.total_cycles),
                "latency_ms": float(self.latency_ms),
                "throughput_images_per_s":
                    float(self.perf.throughput_images_per_s),
            },
            "resources": {
                "bram36": int(res.bram36),
                "dsp": int(res.dsp),
                "ff": int(res.ffs),
                "lut": int(res.luts),
            },
            "utilization_percent": {
                k: float(v) for k, v in self.utilization_percent().items()
            },
            "power_w": {
                "static": float(self.power.static),
                "io": float(self.power.io),
                "logic_signal": float(self.power.logic_signal),
                "dsp": float(self.power.dsp),
                "clocking": float(self.power.clocking),
                "bram": float(self.power.bram),
                "dynamic": float(self.power.dynamic),
                "total": float(self.power.total),
            },
            "energy_per_image_j": float(self.energy_per_image_j),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render a csynth-style text report."""
        cfg: AcceleratorConfig = self.perf.config
        util = self.utilization_percent()
        res = self.perf.resources
        dev = cfg.device
        lines = [
            "== Synthesis Report (analytic model) " + "=" * 30,
            f"* Design:        {self.design_name} [{self.dropout_config}]",
            f"* Device:        {dev.name} ({dev.technology_nm} nm)",
            f"* Clock:         {self.clock_mhz:.1f} MHz",
            f"* Precision:     {cfg.fixed_point}",
            f"* MC samples:    {cfg.mc_samples}",
            "",
            "+ Timing",
            f"|  cycles/pass:    {self.perf.cycles_per_pass:>12.0f}",
            f"|  total cycles:   {self.perf.total_cycles:>12.0f}",
            f"|  latency:        {self.latency_ms:>12.3f} ms",
            f"|  throughput:     {self.perf.throughput_images_per_s:>12.1f} img/s",
            "",
            "+ Utilization",
            f"|  BRAM_36K: {res.bram36:>8d} / {dev.bram36:<8d} ({util['BRAM']:5.1f}%)",
            f"|  DSP48:    {res.dsp:>8d} / {dev.dsp:<8d} ({util['DSP']:5.1f}%)",
            f"|  FF:       {res.ffs:>8d} / {dev.ffs:<8d} ({util['FF']:5.1f}%)",
            f"|  LUT:      {res.luts:>8d} / {dev.luts:<8d} ({util['LUT']:5.1f}%)",
            "",
            "+ Power",
            f"|  static:        {self.power.static:>8.3f} W",
            f"|  io:            {self.power.io:>8.3f} W",
            f"|  logic&signal:  {self.power.logic_signal:>8.3f} W",
            f"|  dsp:           {self.power.dsp:>8.3f} W",
            f"|  clocking:      {self.power.clocking:>8.3f} W",
            f"|  bram:          {self.power.bram:>8.3f} W",
            f"|  dynamic:       {self.power.dynamic:>8.3f} W",
            f"|  total:         {self.power.total:>8.3f} W",
            "",
            f"+ Energy/inference: {self.energy_per_image_j * 1e3:.3f} mJ",
        ]
        return "\n".join(lines)
