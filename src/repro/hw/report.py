"""C-synthesis-style reports (the stand-in for Vivado-HLS csynth output).

The paper reads latency, resource utilization and power from Vivado-HLS
C-synthesis reports and the Vivado post-route power report; this module
renders the analytic model's numbers in the same shape so downstream
code (tables, code generation, docs) has one canonical record type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.perf import AcceleratorConfig, PerfEstimate
from repro.hw.power import PowerBreakdown, energy_per_image_j


@dataclass
class SynthesisReport:
    """Everything the flow reports about one generated accelerator.

    Attributes:
        design_name: model name, e.g. ``resnet18``.
        dropout_config: Table-2 notation of the dropout configuration.
        perf: latency/resource estimate.
        power: power breakdown.
    """

    design_name: str
    dropout_config: str
    perf: PerfEstimate
    power: PowerBreakdown

    # ------------------------------------------------------------------
    # Headline numbers
    # ------------------------------------------------------------------
    @property
    def latency_ms(self) -> float:
        """End-to-end latency of one uncertainty-aware inference."""
        return self.perf.latency_ms

    @property
    def total_power_w(self) -> float:
        """Total on-chip power in watts."""
        return self.power.total

    @property
    def energy_per_image_j(self) -> float:
        """Energy per inference in joules (Table-3 metric)."""
        return energy_per_image_j(self.perf, self.power)

    @property
    def clock_mhz(self) -> float:
        """Operating frequency."""
        return self.perf.config.effective_clock_mhz

    def utilization_percent(self) -> Dict[str, float]:
        """Resource utilization in percent, keyed BRAM/DSP/FF/LUT."""
        util = self.perf.resources.utilization(self.perf.config.device)
        return {k: 100.0 * v for k, v in util.items()}

    def summary_row(self) -> Dict[str, float]:
        """Flat row used by the benchmark tables."""
        util = self.utilization_percent()
        return {
            "config": self.dropout_config,
            "latency_ms": self.latency_ms,
            "power_w": self.total_power_w,
            "energy_j": self.energy_per_image_j,
            "bram_pct": util["BRAM"],
            "dsp_pct": util["DSP"],
            "ff_pct": util["FF"],
            "lut_pct": util["LUT"],
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render a csynth-style text report."""
        cfg: AcceleratorConfig = self.perf.config
        util = self.utilization_percent()
        res = self.perf.resources
        dev = cfg.device
        lines = [
            "== Synthesis Report (analytic model) " + "=" * 30,
            f"* Design:        {self.design_name} [{self.dropout_config}]",
            f"* Device:        {dev.name} ({dev.technology_nm} nm)",
            f"* Clock:         {self.clock_mhz:.1f} MHz",
            f"* Precision:     {cfg.fixed_point}",
            f"* MC samples:    {cfg.mc_samples}",
            "",
            "+ Timing",
            f"|  cycles/pass:    {self.perf.cycles_per_pass:>12.0f}",
            f"|  total cycles:   {self.perf.total_cycles:>12.0f}",
            f"|  latency:        {self.latency_ms:>12.3f} ms",
            f"|  throughput:     {self.perf.throughput_images_per_s:>12.1f} img/s",
            "",
            "+ Utilization",
            f"|  BRAM_36K: {res.bram36:>8d} / {dev.bram36:<8d} ({util['BRAM']:5.1f}%)",
            f"|  DSP48:    {res.dsp:>8d} / {dev.dsp:<8d} ({util['DSP']:5.1f}%)",
            f"|  FF:       {res.ffs:>8d} / {dev.ffs:<8d} ({util['FF']:5.1f}%)",
            f"|  LUT:      {res.luts:>8d} / {dev.luts:<8d} ({util['LUT']:5.1f}%)",
            "",
            "+ Power",
            f"|  static:        {self.power.static:>8.3f} W",
            f"|  io:            {self.power.io:>8.3f} W",
            f"|  logic&signal:  {self.power.logic_signal:>8.3f} W",
            f"|  dsp:           {self.power.dsp:>8.3f} W",
            f"|  clocking:      {self.power.clocking:>8.3f} W",
            f"|  bram:          {self.power.bram:>8.3f} W",
            f"|  dynamic:       {self.power.dynamic:>8.3f} W",
            f"|  total:         {self.power.total:>8.3f} W",
            "",
            f"+ Energy/inference: {self.energy_per_image_j * 1e3:.3f} mJ",
        ]
        return "\n".join(lines)
