"""Learned hardware cost model (paper Sec. 3.5.1).

Synthesis and place & route are too slow to sit inside the evolutionary
loop, so the paper trains a Gaussian-process regressor on a one-time
dataset whose inputs are hardware configurations — *the input shape and
dropout type* — and whose outputs are latencies.  During search the GP
supplies instant latency estimates; dataset construction and training
happen once and the model is reused across searches.

Here the "ground truth" latencies come from the analytic synthesis
model of :mod:`repro.hw.perf` (our Vivado-HLS stand-in), optionally
perturbed with noise to emulate place-and-route variance.  The learned
model predicts per-dropout-layer latency contributions; a network's
total latency is the (deterministic) dropout-free base latency plus the
GP prediction for each specified slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dropout.registry import ALL_CODES
from repro.hw.dropout_hw import dropout_stall_cycles
from repro.hw.gp import GaussianProcessRegressor
from repro.hw.netlist import Netlist
from repro.hw.perf import AcceleratorConfig, estimate
from repro.search.space import DropoutConfig
from repro.utils.rng import SeedLike, new_rng

def num_features() -> int:
    """Feature width: [log2(elements)] + one-hot over registered codes.

    Computed dynamically because extension designs may be registered
    (models trained before a registration must be rebuilt afterwards).
    """
    return 1 + len(ALL_CODES)


def encode_features(elements: int, code: str) -> np.ndarray:
    """Encode one (input shape, dropout type) pair as a feature vector.

    The spatial input shape enters through its element count on a log
    scale; the dropout type is one-hot.
    """
    if elements <= 0:
        raise ValueError(f"elements must be positive, got {elements}")
    if code not in ALL_CODES:
        raise KeyError(f"unknown dropout code {code!r}")
    onehot = [1.0 if code == c else 0.0 for c in ALL_CODES]
    return np.array([np.log2(float(elements))] + onehot, dtype=np.float64)


def build_latency_dataset(config: AcceleratorConfig, *,
                          element_range: Tuple[int, int] = (64, 262_144),
                          points_per_type: int = 24,
                          noise_std_cycles: float = 0.0,
                          rng: SeedLike = None
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Sample the one-time (configuration -> latency) training set.

    Args:
        config: accelerator knobs (clock frequency, dropout lanes).
        element_range: min/max activation elements to cover.
        points_per_type: samples per dropout design, log-spaced.
        noise_std_cycles: optional Gaussian noise on the cycle counts to
            emulate synthesis/place-and-route variance.
        rng: seed for the noise.

    Returns:
        ``(X, y)`` with features from :func:`encode_features` and
        per-pass dropout latency targets in milliseconds.
    """
    if points_per_type < 2:
        raise ValueError(
            f"points_per_type must be >= 2, got {points_per_type}")
    lo, hi = element_range
    if not 0 < lo < hi:
        raise ValueError(f"invalid element_range {element_range}")
    rng = new_rng(rng)
    sizes = np.unique(np.round(np.logspace(
        np.log10(lo), np.log10(hi), points_per_type)).astype(int))
    clock_khz = config.effective_clock_mhz * 1e3
    xs: List[np.ndarray] = []
    ys: List[float] = []
    for code in ALL_CODES:
        for elements in sizes:
            cycles = dropout_stall_cycles(
                code, int(elements), lanes=config.dropout_lanes)
            if noise_std_cycles > 0:
                cycles = max(cycles + rng.normal(0.0, noise_std_cycles), 0.0)
            xs.append(encode_features(int(elements), code))
            ys.append(cycles / clock_khz)
    return np.stack(xs), np.asarray(ys)


@dataclass
class CostModelReport:
    """Fit-quality summary of a trained cost model."""

    mean_abs_error_ms: float
    max_abs_error_ms: float
    num_train_points: int


class GPLatencyModel:
    """GP latency predictor used inside the evolutionary loop.

    Args:
        netlist: a traced reference network (any dropout configuration;
            only slot *positions/shapes* matter — they are fixed by the
            Phase-1 specification).
        config: accelerator knobs matching the final implementation.
        kernel: GP kernel (paper: Matérn).
        noise_std_cycles: synthetic place-and-route noise injected into
            the training set.
        rng: seed for dataset noise and optimizer restarts.
    """

    def __init__(self, netlist: Netlist, config: AcceleratorConfig, *,
                 kernel: str = "matern52", noise_std_cycles: float = 0.0,
                 points_per_type: int = 24, rng: SeedLike = None) -> None:
        self.config = config
        self.netlist = netlist
        root = new_rng(rng)
        self._slot_elements: List[int] = [
            layer.out_elements for layer in netlist.dropout_layers]
        if not self._slot_elements:
            raise ValueError("netlist contains no dropout slots")
        lo = max(16, min(self._slot_elements) // 4)
        hi = max(self._slot_elements) * 4
        x, y = build_latency_dataset(
            config, element_range=(lo, hi),
            points_per_type=points_per_type,
            noise_std_cycles=noise_std_cycles, rng=root)
        self.gp = GaussianProcessRegressor(kernel=kernel, rng=root)
        self.gp.fit(x, y)
        self._x_train, self._y_train = x, y
        self._base_latency_ms = self._compute_base_latency()

    def _compute_base_latency(self) -> float:
        """Latency of the network with all dropout slots inactive."""
        stripped = Netlist(
            layers=[_without_dropout(l) for l in self.netlist.layers],
            input_shape=self.netlist.input_shape)
        return estimate(stripped, self.config).latency_ms

    @property
    def base_latency_ms(self) -> float:
        """Dropout-free network latency (deterministic part)."""
        return self._base_latency_ms

    def predict_slot_ms(self, elements: int, code: str) -> float:
        """Predicted per-pass latency of one dropout slot."""
        features = encode_features(elements, code)[None, :]
        return float(np.maximum(self.gp.predict(features)[0], 0.0))

    def predict_latency_ms(self, config: DropoutConfig) -> float:
        """End-to-end latency (all MC passes) of a dropout configuration."""
        if len(config) != len(self._slot_elements):
            raise ValueError(
                f"configuration has {len(config)} genes but the network "
                f"has {len(self._slot_elements)} dropout slots")
        per_pass = sum(
            self.predict_slot_ms(elements, code)
            for elements, code in zip(self._slot_elements, config))
        return self._base_latency_ms + self.config.mc_samples * per_pass

    def __call__(self, config: DropoutConfig) -> float:
        return self.predict_latency_ms(config)

    def validate_against(self, oracle, configs: Sequence[DropoutConfig]
                         ) -> CostModelReport:
        """Compare GP predictions against an exact latency oracle."""
        errors = [abs(self.predict_latency_ms(c) - float(oracle(c)))
                  for c in configs]
        if not errors:
            raise ValueError("no configurations supplied")
        return CostModelReport(
            mean_abs_error_ms=float(np.mean(errors)),
            max_abs_error_ms=float(np.max(errors)),
            num_train_points=len(self._y_train),
        )


def _without_dropout(layer):
    """Copy of a netlist record with any dropout design removed."""
    from dataclasses import replace
    if layer.kind == "dropout":
        return replace(layer, dropout_code=None)
    return layer
