"""CPU/GPU platform models for the Table-3 comparison.

The paper compares its FPGA designs against an Intel Core i9-9900K and
an NVIDIA RTX 2080 (Ti) running the same dropout-based BayesNN.  This
module models those platforms with a roofline-plus-overhead latency
estimator: batch-1 MC-dropout inference on general-purpose hardware is
dominated by per-pass framework/kernel-launch overhead, with a compute
term bounded by an effective (not peak) throughput.

The default overhead/efficiency constants are calibrated to reproduce
the paper's measured operating points (LeNet, T=3: CPU 1.26 ms @ 205 W,
GPU 0.57 ms @ 236 W), and the same estimator extrapolates to other
networks by MAC count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hw.netlist import Netlist


@dataclass(frozen=True)
class Platform:
    """A general-purpose compute platform.

    Attributes:
        name: display name.
        frequency_mhz: core clock as reported in Table 3.
        technology_nm: process node.
        measured_power_w: full-system power draw under the BayesNN load
            (the paper reports measured wall power, not TDP).
        effective_gmacs: sustained MAC throughput for small-batch
            convnet inference, in GMAC/s (a few percent of peak).
        pass_overhead_ms: fixed framework/launch overhead charged per
            Monte-Carlo forward pass.
    """

    name: str
    frequency_mhz: float
    technology_nm: int
    measured_power_w: float
    effective_gmacs: float
    pass_overhead_ms: float

    def latency_ms(self, netlist: Netlist, mc_samples: int = 3) -> float:
        """Batch-1 latency of ``mc_samples`` MC-dropout passes."""
        if mc_samples < 1:
            raise ValueError(f"mc_samples must be >= 1, got {mc_samples}")
        compute_ms = netlist.total_macs / (self.effective_gmacs * 1e6)
        return mc_samples * (self.pass_overhead_ms + compute_ms)

    def energy_per_image_j(self, netlist: Netlist,
                           mc_samples: int = 3) -> float:
        """Energy per uncertainty-aware inference (power x latency)."""
        return self.measured_power_w * self.latency_ms(
            netlist, mc_samples) / 1e3


#: Intel Core i9-9900K under PyTorch-style eager inference.
#: Calibrated: LeNet @ T=3 -> ~1.26 ms (paper Table 3).
CPU_I9_9900K = Platform(
    name="Intel Core i9-9900K",
    frequency_mhz=3600.0,
    technology_nm=14,
    measured_power_w=205.0,
    effective_gmacs=3.0,
    pass_overhead_ms=0.28,
)

#: NVIDIA GeForce RTX 2080 (Ti): kernel-launch bound at batch 1.
#: Calibrated: LeNet @ T=3 -> ~0.57 ms (paper Table 3).
GPU_RTX_2080 = Platform(
    name="NVIDIA RTX 2080",
    frequency_mhz=1545.0,
    technology_nm=12,
    measured_power_w=236.0,
    effective_gmacs=40.0,
    pass_overhead_ms=0.186,
)

#: Platform registry keyed by short name.
PLATFORM_CATALOG: Dict[str, Platform] = {
    "cpu": CPU_I9_9900K,
    "gpu": GPU_RTX_2080,
}


def get_platform(name: str) -> Platform:
    """Look up a platform by short name ('cpu' or 'gpu')."""
    key = name.lower()
    if key not in PLATFORM_CATALOG:
        raise KeyError(
            f"unknown platform {name!r}; catalog: {sorted(PLATFORM_CATALOG)}")
    return PLATFORM_CATALOG[key]
