"""Gaussian-process regression, from scratch (paper Sec. 3.5.1).

The paper's hardware cost model is a Gaussian process with a Matérn
kernel and a constant mean function, trained once on (hardware
configuration -> latency) pairs and reused across searches.  This module
implements exact GP regression with:

* Matérn-5/2 and RBF kernels with per-dimension (ARD) lengthscales,
* a constant (learned) mean function,
* Cholesky-based posterior inference,
* type-II maximum likelihood hyperparameter fitting (L-BFGS-B on the
  negative log marginal likelihood) with multi-restart.
"""

from __future__ import annotations

import math
import zlib
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.utils.rng import SeedLike, derive_seed, new_rng

_JITTER = 1e-8
_LOG_BOUNDS = (-8.0, 8.0)


def _pairwise_scaled_dists(xa: np.ndarray, xb: np.ndarray,
                           lengthscales: np.ndarray) -> np.ndarray:
    """Euclidean distances after per-dimension lengthscale division."""
    a = xa / lengthscales
    b = xb / lengthscales
    d2 = (np.sum(a * a, axis=1)[:, None] + np.sum(b * b, axis=1)[None, :]
          - 2.0 * a @ b.T)
    return np.sqrt(np.maximum(d2, 0.0))


def matern52(xa: np.ndarray, xb: np.ndarray, variance: float,
             lengthscales: np.ndarray) -> np.ndarray:
    """Matérn-5/2 kernel matrix between row sets ``xa`` and ``xb``."""
    r = _pairwise_scaled_dists(xa, xb, lengthscales)
    s = math.sqrt(5.0) * r
    return variance * (1.0 + s + s * s / 3.0) * np.exp(-s)


def rbf(xa: np.ndarray, xb: np.ndarray, variance: float,
        lengthscales: np.ndarray) -> np.ndarray:
    """Squared-exponential kernel matrix."""
    r = _pairwise_scaled_dists(xa, xb, lengthscales)
    return variance * np.exp(-0.5 * r * r)

_KERNELS = {"matern52": matern52, "rbf": rbf}


class GaussianProcessRegressor:
    """Exact GP regression with constant mean and ARD kernel.

    Args:
        kernel: ``'matern52'`` (paper's choice) or ``'rbf'``.
        noise: initial observation-noise standard deviation.
        optimize_hyperparams: fit kernel hyperparameters by maximizing
            the marginal likelihood (recommended; disable for tests
            needing fixed kernels).
        n_restarts: extra random restarts for the optimizer.
        rng: seed or generator for restart initialization.
    """

    def __init__(self, kernel: str = "matern52", *, noise: float = 1e-2,
                 optimize_hyperparams: bool = True, n_restarts: int = 2,
                 rng: SeedLike = None) -> None:
        if kernel not in _KERNELS:
            raise KeyError(
                f"unknown kernel {kernel!r}; known: {sorted(_KERNELS)}")
        if noise <= 0:
            raise ValueError(f"noise must be positive, got {noise}")
        self.kernel_name = kernel
        self._kernel = _KERNELS[kernel]
        self.init_noise = float(noise)
        self.optimize_hyperparams = bool(optimize_hyperparams)
        self.n_restarts = int(n_restarts)
        self.rng = new_rng(rng)
        # Restart initializations must not depend on how many fits ran
        # before (surrogate-guided searches refit on growing data and
        # resumed runs refit on identical data): one seed is drawn at
        # construction and every fit() derives its restart stream from
        # (this seed, data fingerprint), so refitting the same data
        # always reproduces the same hyperparameters.
        self._restart_seed = int(self.rng.integers(2 ** 31 - 1))

        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_scale: Optional[np.ndarray] = None
        self.mean_const: float = 0.0
        self.variance: float = 1.0
        self.lengthscales: Optional[np.ndarray] = None
        self.noise: float = float(noise)
        self._chol: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._alpha is not None

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (x - self._x_mean) / self._x_scale

    def _pack(self, variance: float, lengthscales: np.ndarray,
              noise: float) -> np.ndarray:
        return np.log(np.concatenate(
            [[variance], np.atleast_1d(lengthscales), [noise]]))

    def _unpack(self, theta: np.ndarray) -> Tuple[float, np.ndarray, float]:
        values = np.exp(np.clip(theta, *_LOG_BOUNDS))
        return float(values[0]), values[1:-1], float(values[-1])

    def _nlml(self, theta: np.ndarray, x: np.ndarray,
              y_centered: np.ndarray) -> float:
        variance, lengthscales, noise = self._unpack(theta)
        n = x.shape[0]
        k = self._kernel(x, x, variance, lengthscales)
        k[np.diag_indices_from(k)] += noise ** 2 + _JITTER
        try:
            chol = np.linalg.cholesky(k)
        except np.linalg.LinAlgError:
            return 1e25
        alpha = np.linalg.solve(
            chol.T, np.linalg.solve(chol, y_centered))
        nlml = (0.5 * y_centered @ alpha
                + np.sum(np.log(np.diag(chol)))
                + 0.5 * n * math.log(2.0 * math.pi))
        return float(nlml)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the GP to observations ``(x, y)``.

        Args:
            x: inputs, shape ``(n, d)``.
            y: targets, shape ``(n,)``.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.ndim != 2:
            raise ValueError(f"x must be (n, d), got shape {x.shape}")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x has {x.shape[0]} rows but y has {y.shape[0]} entries")
        if x.shape[0] < 2:
            raise ValueError("GP regression needs at least two points")

        self._x_mean = x.mean(axis=0)
        self._x_scale = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        xs = self._standardize(x)
        self.mean_const = float(y.mean())
        yc = y - self.mean_const
        d = x.shape[1]

        y_std = float(yc.std()) or 1.0
        theta0 = self._pack(y_std ** 2, np.ones(d), max(self.init_noise, 1e-3))
        candidates = [theta0]
        restart_rng = np.random.default_rng(derive_seed(
            self._restart_seed, zlib.crc32(x.tobytes()),
            zlib.crc32(y.tobytes())))
        for _ in range(self.n_restarts if self.optimize_hyperparams else 0):
            candidates.append(
                theta0 + restart_rng.normal(0.0, 1.0, theta0.shape))

        best_theta, best_val = theta0, self._nlml(theta0, xs, yc)
        if self.optimize_hyperparams:
            for start in candidates:
                res = optimize.minimize(
                    self._nlml, start, args=(xs, yc), method="L-BFGS-B",
                    bounds=[_LOG_BOUNDS] * len(start))
                if res.fun < best_val:
                    best_theta, best_val = res.x, float(res.fun)

        self.variance, self.lengthscales, self.noise = self._unpack(best_theta)
        k = self._kernel(xs, xs, self.variance, self.lengthscales)
        k[np.diag_indices_from(k)] += self.noise ** 2 + _JITTER
        self._chol = np.linalg.cholesky(k)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, yc))
        self._x = xs
        self._y = y
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray,
                return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at ``x``.

        Args:
            x: query inputs, shape ``(m, d)``.
            return_std: also return the predictive standard deviation
                (including observation noise).
        """
        if not self.is_fitted:
            raise RuntimeError("predict() called before fit()")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        xs = self._standardize(x)
        ks = self._kernel(xs, self._x, self.variance, self.lengthscales)
        mean = self.mean_const + ks @ self._alpha
        if not return_std:
            return mean
        v = np.linalg.solve(self._chol, ks.T)
        var = self._kernel(xs, xs, self.variance, self.lengthscales).diagonal()
        var = np.maximum(var - np.sum(v * v, axis=0), 0.0) + self.noise ** 2
        return mean, np.sqrt(var)

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood at the fitted hyperparameters."""
        if not self.is_fitted:
            raise RuntimeError("model is not fitted")
        yc = self._y - self.mean_const
        n = len(yc)
        return float(-(0.5 * yc @ self._alpha
                       + np.sum(np.log(np.diag(self._chol)))
                       + 0.5 * n * math.log(2.0 * math.pi)))
