"""Fixed-point quantization — the paper's ``<16,8>`` data format.

Paper Sec. 4: *"16-bit fixed data is used, with 1 sign bit, 7 integer
bits and 8 fraction bits. QKeras is used for quantization."*  This
module reproduces that numeric format (symmetric two's-complement with
saturation and round-to-nearest) and applies it to whole models for
quantized inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.nn.module import DTYPE, Module
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format ``Q<integer_bits>.<fraction_bits>``.

    Attributes:
        total_bits: full word width including the sign bit.
        fraction_bits: bits to the right of the binary point.

    The integer bits (excluding sign) are
    ``total_bits - 1 - fraction_bits``.
    """

    total_bits: int = 16
    fraction_bits: int = 8

    def __post_init__(self) -> None:
        check_positive_int(self.total_bits, "total_bits")
        if self.fraction_bits < 0:
            raise ValueError(
                f"fraction_bits must be >= 0, got {self.fraction_bits}")
        if self.fraction_bits > self.total_bits - 1:
            raise ValueError(
                f"fraction_bits={self.fraction_bits} leaves no sign bit "
                f"in a {self.total_bits}-bit word")

    @property
    def integer_bits(self) -> int:
        """Integer bits excluding the sign bit."""
        return self.total_bits - 1 - self.fraction_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_fixed(self, x: np.ndarray) -> np.ndarray:
        """Quantize to integer codes (round-to-nearest, saturating)."""
        x = np.asarray(x, dtype=np.float64)
        codes = np.rint(x / self.scale)
        lo = -(2 ** (self.total_bits - 1))
        hi = 2 ** (self.total_bits - 1) - 1
        return np.clip(codes, lo, hi).astype(np.int64)

    def from_fixed(self, codes: np.ndarray) -> np.ndarray:
        """Convert integer codes back to real values."""
        return (np.asarray(codes, dtype=np.float64) * self.scale).astype(DTYPE)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip ``x`` through the format (quantize + dequantize)."""
        return self.from_fixed(self.to_fixed(x))

    def quantization_error(self, x: np.ndarray) -> float:
        """Mean absolute quantization error over ``x``."""
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return 0.0
        return float(np.abs(x - self.quantize(x)).mean())

    def __str__(self) -> str:
        return f"ap_fixed<{self.total_bits},{self.integer_bits + 1}>"


#: The paper's numeric format: 1 sign + 7 integer + 8 fraction bits.
PAPER_FORMAT = FixedPointFormat(total_bits=16, fraction_bits=8)


def quantize_module(module: Module,
                    fmt: FixedPointFormat = PAPER_FORMAT) -> Dict[str, float]:
    """Quantize every parameter of ``module`` in place.

    Returns a map from parameter name to its mean absolute quantization
    error — useful for checking that the format fits the weight range.
    """
    errors: Dict[str, float] = {}
    for name, param in module.named_parameters():
        errors[name] = fmt.quantization_error(param.data)
        param.data = fmt.quantize(param.data)
    return errors
