"""repro — Hardware-aware neural dropout search (DAC 2024 reproduction).

A self-contained reproduction of *"Hardware-Aware Neural Dropout Search
for Reliable Uncertainty Prediction on FPGA"* (Zhang et al., DAC 2024):
dropout-based Bayesian neural networks, a layer-wise dropout search
space optimized with one-shot SPOS supernet training plus an
evolutionary algorithm, and an FPGA accelerator-generation phase with a
Gaussian-process hardware cost model.

Subpackages
-----------
``repro.nn``
    From-scratch numpy deep-learning substrate (layers, losses, optim).
``repro.dropout``
    The four dropout designs: Bernoulli, Random, Block, Masksembles.
``repro.models``
    LeNet / VGG11 / ResNet18 with named dropout slots.
``repro.data``
    Synthetic MNIST/SVHN/CIFAR-like datasets plus Gaussian-noise OOD.
``repro.bayes``
    MC-dropout inference and uncertainty metrics (accuracy, ECE, aPE).
``repro.search``
    SPOS supernet + evolutionary dropout search (the paper's core).
``repro.hw``
    FPGA performance/resource/power simulator, fixed-point arithmetic,
    GP latency cost model, HLS code generation, platform baselines.
``repro.api``
    The experiment layer: declarative ``ExperimentSpec``, the
    stage-based resumable pipeline over an ``ArtifactStore``, and the
    ``Runner`` / ``run_experiments`` facade.  Start here.
``repro.serve``
    The serving layer: exportable ``Deployment`` artifacts and the
    async micro-batching ``UncertaintyService`` answering concurrent
    requests from fused MC-dropout passes.
``repro.flow``
    Deprecated stateful facade over ``repro.api`` (kept for backward
    compatibility).
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
