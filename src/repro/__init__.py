"""repro — Hardware-aware neural dropout search (DAC 2024 reproduction).

A self-contained reproduction of *"Hardware-Aware Neural Dropout Search
for Reliable Uncertainty Prediction on FPGA"* (Zhang et al., DAC 2024):
dropout-based Bayesian neural networks, a layer-wise dropout search
space optimized with one-shot SPOS supernet training plus an
evolutionary algorithm, and an FPGA accelerator-generation phase with a
Gaussian-process hardware cost model.

Subpackages
-----------
``repro.nn``
    From-scratch numpy deep-learning substrate (layers, losses, optim).
``repro.dropout``
    The four dropout designs: Bernoulli, Random, Block, Masksembles.
``repro.models``
    LeNet / VGG11 / ResNet18 with named dropout slots.
``repro.data``
    Synthetic MNIST/SVHN/CIFAR-like datasets plus Gaussian-noise OOD.
``repro.bayes``
    MC-dropout inference and uncertainty metrics (accuracy, ECE, aPE).
``repro.search``
    SPOS supernet + evolutionary dropout search (the paper's core).
``repro.hw``
    FPGA performance/resource/power simulator, fixed-point arithmetic,
    GP latency cost model, HLS code generation, platform baselines.
``repro.flow``
    The four-phase pipeline: Specification -> Training -> Search ->
    Accelerator Generation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
