"""Deprecated four-phase flow facade (use :mod:`repro.api` instead).

``DropoutSearchFlow`` was the original stateful driver of the paper's
pipeline (Fig. 2).  It now survives only as a thin shim over the
composable :mod:`repro.api` stages so existing scripts keep working:

* phases delegate to :class:`~repro.api.stages.SpecifyStage`,
  :class:`~repro.api.stages.TrainStage`,
  :class:`~repro.api.stages.SearchStage` and
  :func:`~repro.api.stages.build_design`;
* ``flow.state`` *is* the underlying
  :class:`~repro.api.stages.PipelineContext` (whose field names match
  the old ``FlowState``), so attribute access is unchanged.

New code should build an :class:`repro.api.ExperimentSpec` and run it
through :class:`repro.api.Runner`, which adds JSON artifact
persistence, resume and batch sweeps::

    from repro.api import ExperimentSpec, Runner
    result = Runner(ExperimentSpec(model="lenet_slim",
                                   dataset="mnist_like",
                                   image_size=16, seed=7),
                    store_root="runs").run()

Legacy example (still supported)::

    flow = DropoutSearchFlow(FlowSpec(model="lenet_slim",
                                      dataset="mnist_like",
                                      image_size=16, seed=7))
    flow.specify()
    flow.train()
    result = flow.search("accuracy")
    design, project = flow.generate(result.best_config, outdir="gen")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.runner import summary_rows
from repro.api.spec import ExperimentSpec
from repro.api.stages import (
    PipelineContext,
    SearchStage,
    SpecifyStage,
    TrainStage,
    build_design,
    ensure_cost_model,
    ensure_evaluator,
)
from repro.hw.accelerator import AcceleratorDesign
from repro.hw.codegen import EmittedProject
from repro.hw.cost_model import GPLatencyModel
from repro.hw.perf import AcceleratorConfig
from repro.search import (
    CandidateEvaluator,
    EvolutionConfig,
    SearchResult,
    SearchSpace,
    TrainConfig,
    TrainLog,
)
from repro.search.space import DropoutConfig

#: Backward-compatible alias: ``flow.state`` is a PipelineContext.
FlowState = PipelineContext


@dataclass
class FlowSpec:
    """Legacy flat specification (superseded by ``ExperimentSpec``).

    Attributes mirror the original flow surface; see
    :class:`repro.api.ExperimentSpec` for the declarative replacement.
    """

    model: str = "lenet"
    dataset: str = "mnist_like"
    image_size: Optional[int] = None
    dataset_size: int = 900
    ood_size: int = 200
    mc_samples: int = 3
    dropout_p: float = 0.15
    masksembles_scale: float = 1.7
    num_masks: int = 4
    block_size: int = 3
    accelerator: Optional[AcceleratorConfig] = None
    seed: int = 0

    def to_experiment_spec(self) -> ExperimentSpec:
        """The equivalent declarative spec (minus the live accelerator
        override, which :class:`DropoutSearchFlow` passes separately)."""
        return ExperimentSpec(
            model=self.model, dataset=self.dataset,
            image_size=self.image_size, dataset_size=self.dataset_size,
            ood_size=self.ood_size, mc_samples=self.mc_samples,
            dropout_p=self.dropout_p,
            masksembles_scale=self.masksembles_scale,
            num_masks=self.num_masks, block_size=self.block_size,
            seed=self.seed)


class DropoutSearchFlow:
    """Deprecated stateful facade over the :mod:`repro.api` stages."""

    def __init__(self, spec: Optional[FlowSpec] = None) -> None:
        self.spec = spec or FlowSpec()
        self._ctx = PipelineContext(
            spec=self.spec.to_experiment_spec(),
            accel_override=self.spec.accelerator)
        self._search_stage = SearchStage()

    # ------------------------------------------------------------------
    # Legacy attribute surface
    # ------------------------------------------------------------------
    @property
    def state(self) -> PipelineContext:
        """The runtime state (a live :class:`PipelineContext`)."""
        return self._ctx

    @property
    def accel_config(self) -> AcceleratorConfig:
        """Resolved accelerator design knobs."""
        return self._ctx.accel_config

    @property
    def _builder(self):
        return self._ctx.builder

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Per-image input shape of the specified dataset."""
        if self._ctx.dataset is None:
            raise RuntimeError("run specify() first")
        return self._ctx.input_shape

    # ------------------------------------------------------------------
    # Phases (delegating to the api stages)
    # ------------------------------------------------------------------
    def specify(self) -> SearchSpace:
        """Phase 1: build data, model, supernet and the search space."""
        return SpecifyStage().execute(self._ctx)

    def train(self, config: Optional[TrainConfig] = None) -> TrainLog:
        """Phase 2: one-shot SPOS supernet training."""
        if self._ctx.supernet is None:
            self.specify()
        return TrainStage().execute(
            self._ctx, config=config or TrainConfig(epochs=20))

    def search(self, aim="accuracy", *,
               evolution: Optional[EvolutionConfig] = None,
               use_gp_cost_model: bool = True) -> SearchResult:
        """Phase 3: evolutionary search under one aim (Eq. 2)."""
        if self._ctx.train_log is None:
            self.train()
        return self._search_stage.search_one(
            self._ctx, aim, evolution=evolution,
            use_gp_cost_model=use_gp_cost_model)

    def generate(self, config: DropoutConfig, *,
                 outdir: Optional[str] = None,
                 project_name: str = "myproject"
                 ) -> Tuple[AcceleratorDesign, Optional[EmittedProject]]:
        """Phase 4: characterize ``config``; optionally emit HLS."""
        if self._ctx.supernet is None:
            raise RuntimeError("run specify() first")
        return build_design(self._ctx, config, outdir=outdir,
                            project_name=project_name)

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def _ensure_cost_model(self) -> GPLatencyModel:
        return ensure_cost_model(self._ctx)

    def _ensure_evaluator(self, use_gp_cost_model: bool
                          ) -> CandidateEvaluator:
        return ensure_evaluator(self._ctx, use_gp_cost_model)

    def evaluate_config(self, config: DropoutConfig):
        """Algorithmic + hardware snapshot of one configuration."""
        evaluator = ensure_evaluator(self._ctx, True)
        return evaluator.evaluate(tuple(config))

    def summary(self) -> List[Dict[str, object]]:
        """One row per searched aim: config, metrics, latency, cost."""
        return summary_rows(self._ctx.search_results,
                            self._ctx.search_seconds)
