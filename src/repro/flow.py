"""The four-phase neural dropout search flow (paper Fig. 2).

``DropoutSearchFlow`` packages the full pipeline:

1. **Specification** — choose the network, the dataset, the specified
   dropout slots and their admissible designs;
2. **Training** — one-shot SPOS supernet training with uniform path
   sampling and weight sharing;
3. **Search** — evolutionary optimization of the scalarized aim,
   Eq. (2), with the GP hardware cost model supplying instant latency
   estimates;
4. **Accelerator generation** — characterize the winning configuration
   on the FPGA model and emit the HLS project.

Example::

    flow = DropoutSearchFlow(FlowSpec(model="lenet_slim",
                                      dataset="mnist_like",
                                      image_size=16, seed=7))
    flow.specify()
    flow.train()
    result = flow.search("accuracy")
    design, project = flow.generate(result.best_config, outdir="gen")
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bayes.evaluate import AlgorithmicReport
from repro.data import (
    DataSplits,
    Dataset,
    gaussian_noise_like,
    make_dataset,
    split_dataset,
)
from repro.hw.accelerator import (
    AcceleratorBuilder,
    AcceleratorDesign,
    recommended_config,
)
from repro.hw.codegen import EmittedProject, emit_hls_project
from repro.hw.cost_model import GPLatencyModel
from repro.hw.netlist import trace_network
from repro.hw.perf import AcceleratorConfig
from repro.models import build_model
from repro.nn.module import Module
from repro.search import (
    CandidateEvaluator,
    EvolutionConfig,
    EvolutionarySearch,
    SearchResult,
    SearchSpace,
    Supernet,
    TrainConfig,
    TrainLog,
    get_aim,
    train_supernet,
)
from repro.search.space import DropoutConfig, config_to_string
from repro.utils.rng import derive_seed
from repro.utils.timers import Timer


@dataclass
class FlowSpec:
    """Phase-1 specification.

    Attributes:
        model: model-zoo name (``lenet``, ``vgg11``, ``resnet18`` or a
            ``*_slim`` CI variant).
        dataset: synthetic dataset name (``mnist_like`` / ``svhn_like``
            / ``cifar_like``).
        image_size: square input side; None uses dataset default.
        dataset_size: number of synthesized images.
        ood_size: number of Gaussian-noise OOD images for aPE.
        mc_samples: Monte-Carlo passes per inference (paper: 3).
        dropout_p: drop rate of the dynamic designs.
        masksembles_scale: Masksembles overlap scale.
        num_masks: Masksembles family size.
        block_size: Block-dropout patch side.
        accelerator: FPGA design knobs; None uses the calibrated
            per-model preset.
        seed: master seed; all phases derive their streams from it.
    """

    model: str = "lenet"
    dataset: str = "mnist_like"
    image_size: Optional[int] = None
    dataset_size: int = 900
    ood_size: int = 200
    mc_samples: int = 3
    dropout_p: float = 0.15
    masksembles_scale: float = 1.7
    num_masks: int = 4
    block_size: int = 3
    accelerator: Optional[AcceleratorConfig] = None
    seed: int = 0


@dataclass
class FlowState:
    """Artifacts produced as the flow advances through its phases."""

    dataset: Optional[Dataset] = None
    splits: Optional[DataSplits] = None
    ood: Optional[Dataset] = None
    model: Optional[Module] = None
    supernet: Optional[Supernet] = None
    space: Optional[SearchSpace] = None
    train_log: Optional[TrainLog] = None
    cost_model: Optional[GPLatencyModel] = None
    evaluator: Optional[CandidateEvaluator] = None
    search_results: Dict[str, SearchResult] = field(default_factory=dict)
    search_seconds: Dict[str, float] = field(default_factory=dict)


class DropoutSearchFlow:
    """Drives the four phases end to end (see module docstring)."""

    def __init__(self, spec: Optional[FlowSpec] = None) -> None:
        self.spec = spec or FlowSpec()
        self.state = FlowState()
        self.accel_config: AcceleratorConfig = (
            self.spec.accelerator
            or recommended_config(self.spec.model,
                                  mc_samples=self.spec.mc_samples))
        self._builder = AcceleratorBuilder(self.accel_config)

    # ------------------------------------------------------------------
    # Phase 1: Specification
    # ------------------------------------------------------------------
    def specify(self) -> SearchSpace:
        """Build data, model, supernet and the dropout search space."""
        spec = self.spec
        data_seed = derive_seed(spec.seed, 1)
        dataset = make_dataset(spec.dataset, spec.dataset_size,
                               image_size=spec.image_size,
                               rng=data_seed).normalized()
        splits = split_dataset(dataset, rng=derive_seed(spec.seed, 2))
        ood = gaussian_noise_like(splits.train, spec.ood_size,
                                  rng=derive_seed(spec.seed, 3))
        in_channels, height, _ = dataset.image_shape
        model = build_model(spec.model, in_channels=in_channels,
                            image_size=height,
                            rng=derive_seed(spec.seed, 4))
        supernet = Supernet(
            model, p=spec.dropout_p, num_masks=spec.num_masks,
            scale=spec.masksembles_scale, block_size=spec.block_size,
            rng=derive_seed(spec.seed, 5))
        self.state.dataset = dataset
        self.state.splits = splits
        self.state.ood = ood
        self.state.model = model
        self.state.supernet = supernet
        self.state.space = supernet.space
        return supernet.space

    # ------------------------------------------------------------------
    # Phase 2: Training
    # ------------------------------------------------------------------
    def train(self, config: Optional[TrainConfig] = None) -> TrainLog:
        """One-shot SPOS supernet training."""
        if self.state.supernet is None:
            self.specify()
        log = train_supernet(
            self.state.supernet, self.state.splits.train,
            config or TrainConfig(epochs=20),
            rng=derive_seed(self.spec.seed, 6))
        self.state.train_log = log
        return log

    # ------------------------------------------------------------------
    # Phase 3: Search
    # ------------------------------------------------------------------
    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Per-image input shape of the specified dataset."""
        if self.state.dataset is None:
            raise RuntimeError("run specify() first")
        return self.state.dataset.image_shape

    def _ensure_cost_model(self) -> GPLatencyModel:
        if self.state.cost_model is None:
            netlist = trace_network(self.state.supernet.model,
                                    self.input_shape)
            self.state.cost_model = GPLatencyModel(
                netlist, self.accel_config,
                rng=derive_seed(self.spec.seed, 7))
        return self.state.cost_model

    def _ensure_evaluator(self, use_gp_cost_model: bool
                          ) -> CandidateEvaluator:
        if self.state.evaluator is None:
            if use_gp_cost_model:
                latency_fn = self._ensure_cost_model()
            else:
                latency_fn = self._builder.latency_oracle(
                    self.state.supernet, self.input_shape)
            self.state.evaluator = CandidateEvaluator(
                self.state.supernet, self.state.splits.val, self.state.ood,
                latency_fn=latency_fn, num_mc_samples=self.spec.mc_samples)
        return self.state.evaluator

    def search(self, aim="accuracy", *,
               evolution: Optional[EvolutionConfig] = None,
               use_gp_cost_model: bool = True) -> SearchResult:
        """Evolutionary search under one aim (Eq. 2).

        Results and wall-clock costs are recorded per aim, mirroring the
        paper's Table 2.
        """
        if self.state.train_log is None:
            self.train()
        aim_obj = get_aim(aim)
        evaluator = self._ensure_evaluator(use_gp_cost_model)
        # zlib.crc32 is stable across processes (unlike hash(str)).
        aim_salt = zlib.crc32(aim_obj.name.encode())
        with Timer() as timer:
            search = EvolutionarySearch(
                evaluator, aim_obj, config=evolution,
                rng=derive_seed(self.spec.seed, 8, aim_salt))
            result = search.run()
        self.state.search_results[aim_obj.name] = result
        self.state.search_seconds[aim_obj.name] = timer.elapsed
        return result

    # ------------------------------------------------------------------
    # Phase 4: Accelerator generation
    # ------------------------------------------------------------------
    def generate(self, config: DropoutConfig, *,
                 outdir: Optional[str] = None,
                 project_name: str = "myproject"
                 ) -> Tuple[AcceleratorDesign, Optional[EmittedProject]]:
        """Characterize ``config`` and optionally emit the HLS project."""
        if self.state.supernet is None:
            raise RuntimeError("run specify() first")
        design = self._builder.build_for_config(
            self.state.supernet, self.input_shape, tuple(config),
            name=self.spec.model)
        project = None
        if outdir is not None:
            project = emit_hls_project(design, outdir,
                                       model=self.state.supernet.model,
                                       project_name=project_name)
        return design, project

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def evaluate_config(self, config: DropoutConfig):
        """Algorithmic + hardware snapshot of one configuration."""
        evaluator = self._ensure_evaluator(True)
        return evaluator.evaluate(tuple(config))

    def summary(self) -> List[Dict[str, object]]:
        """One row per searched aim: config, metrics, latency, cost."""
        rows: List[Dict[str, object]] = []
        for aim_name, result in self.state.search_results.items():
            report: AlgorithmicReport = result.best.report
            rows.append({
                "aim": aim_name,
                "config": config_to_string(result.best_config),
                "accuracy_pct": report.accuracy_percent,
                "ece_pct": report.ece_percent,
                "ape_nats": report.ape,
                "latency_ms": result.best.latency_ms,
                "search_seconds": self.state.search_seconds.get(aim_name),
                "evaluations": result.num_evaluations,
            })
        return rows
