"""MC-dropout Bayesian inference and uncertainty metrics."""

from repro.bayes.calibration import (
    ReliabilityBin,
    TemperatureScaler,
    ece_from_diagram,
    reliability_diagram,
)
from repro.bayes.evaluate import AlgorithmicReport, evaluate_bayesnn
from repro.bayes.mc import (
    ENGINES,
    MCPrediction,
    mc_predict,
    mc_predict_batched,
    mc_predict_looped,
)
from repro.bayes.metrics import (
    accuracy,
    average_predictive_entropy,
    brier_score,
    expected_calibration_error,
    max_entropy,
    negative_log_likelihood,
    ood_auroc,
)

__all__ = [
    "ENGINES",
    "AlgorithmicReport",
    "MCPrediction",
    "ReliabilityBin",
    "TemperatureScaler",
    "accuracy",
    "average_predictive_entropy",
    "brier_score",
    "ece_from_diagram",
    "evaluate_bayesnn",
    "expected_calibration_error",
    "max_entropy",
    "mc_predict",
    "mc_predict_batched",
    "mc_predict_looped",
    "negative_log_likelihood",
    "ood_auroc",
    "reliability_diagram",
]
