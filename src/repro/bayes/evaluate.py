"""One-call algorithmic evaluation of a dropout-based BayesNN.

Bundles the three algorithmic search objectives of the paper (accuracy,
ECE, aPE) plus supplementary diagnostics into a single report, shared by
the evolutionary search, the exhaustive Figure-4 sweep and the Table-1/3
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bayes.mc import MCPrediction, mc_predict
from repro.bayes.metrics import (
    accuracy,
    average_predictive_entropy,
    brier_score,
    expected_calibration_error,
    negative_log_likelihood,
)
from repro.data.dataset import Dataset
from repro.nn.module import Module
from repro.utils.validation import check_known_fields


@dataclass
class AlgorithmicReport:
    """Algorithmic metrics of one evaluated configuration.

    Attributes:
        accuracy: posterior-predictive accuracy in ``[0, 1]``.
        ece: expected calibration error in ``[0, 1]``.
        ape: average predictive entropy on the OOD set, in nats.
        nll: negative log-likelihood on in-distribution data.
        brier: Brier score on in-distribution data.
        num_mc_samples: Monte-Carlo passes used.
        extras: optional free-form extra diagnostics.
    """

    accuracy: float
    ece: float
    ape: float
    nll: float
    brier: float
    num_mc_samples: int
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy_percent(self) -> float:
        """Accuracy in percent (paper Table 1 convention)."""
        return 100.0 * self.accuracy

    @property
    def ece_percent(self) -> float:
        """ECE in percent (paper Table 1 convention)."""
        return 100.0 * self.ece

    def as_dict(self) -> Dict[str, float]:
        """Flat dict view (used by benches and serialization)."""
        out = {
            "accuracy": self.accuracy,
            "ece": self.ece,
            "ape": self.ape,
            "nll": self.nll,
            "brier": self.brier,
            "num_mc_samples": float(self.num_mc_samples),
        }
        out.update(self.extras)
        return out

    def to_dict(self) -> Dict[str, object]:
        """Structured JSON-ready view; ``extras`` stay nested so the
        report round-trips exactly (unlike the flat :meth:`as_dict`)."""
        return {
            "accuracy": float(self.accuracy),
            "ece": float(self.ece),
            "ape": float(self.ape),
            "nll": float(self.nll),
            "brier": float(self.brier),
            "num_mc_samples": int(self.num_mc_samples),
            "extras": {k: float(v) for k, v in self.extras.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AlgorithmicReport":
        """Rebuild a report serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "AlgorithmicReport")
        return cls(
            accuracy=float(data["accuracy"]),
            ece=float(data["ece"]),
            ape=float(data["ape"]),
            nll=float(data["nll"]),
            brier=float(data["brier"]),
            num_mc_samples=int(data["num_mc_samples"]),
            extras={k: float(v)
                    for k, v in dict(data.get("extras", {})).items()},
        )


def evaluate_bayesnn(model: Module, data: Dataset, ood: Dataset, *,
                     num_samples: int = 3,
                     batch_size: Optional[int] = None,
                     engine: str = "batched") -> AlgorithmicReport:
    """Evaluate a BayesNN on in-distribution and OOD data.

    Args:
        model: network with MC-dropout layers installed.
        data: labelled in-distribution evaluation split.
        ood: unlabelled OOD set for the aPE metric (paper: Gaussian
            noise with training-data statistics).
        num_samples: Monte-Carlo passes ``T`` (paper uses 3).
        batch_size: optional micro-batching for memory control.
        engine: MC inference engine (``"batched"`` or ``"looped"``);
            see :mod:`repro.bayes.mc`.  The engines are bit-identical,
            so reports do not depend on the choice.

    Returns:
        An :class:`AlgorithmicReport` with all metric values.
    """
    pred_id: MCPrediction = mc_predict(
        model, data.images, num_samples, batch_size=batch_size,
        engine=engine)
    pred_ood: MCPrediction = mc_predict(
        model, ood.images, num_samples, batch_size=batch_size,
        engine=engine)
    mean_id = pred_id.mean_probs
    return AlgorithmicReport(
        accuracy=accuracy(mean_id, data.labels),
        ece=expected_calibration_error(mean_id, data.labels),
        ape=average_predictive_entropy(pred_ood.mean_probs),
        nll=negative_log_likelihood(mean_id, data.labels),
        brier=brier_score(mean_id, data.labels),
        num_mc_samples=num_samples,
        extras={
            "mean_epistemic_id": float(pred_id.mutual_information().mean()),
            "mean_epistemic_ood": float(pred_ood.mutual_information().mean()),
        },
    )
