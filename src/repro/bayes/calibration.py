"""Calibration diagnostics and post-hoc temperature scaling.

The paper's ECE objective measures calibration; this module adds the
standard companion tooling a practitioner expects alongside it:

* :func:`reliability_diagram` — the binned confidence/accuracy curve
  underlying ECE (what the paper's ECE numbers summarize);
* :class:`TemperatureScaler` — post-hoc temperature scaling (Guo et
  al., 2017), the usual baseline against which searched-calibration
  gains are judged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
from scipy import optimize

from repro.nn.functional import log_softmax, softmax
from repro.utils.validation import check_positive_int, check_same_length


@dataclass
class ReliabilityBin:
    """One bin of a reliability diagram."""

    lower: float
    upper: float
    count: int
    mean_confidence: float
    mean_accuracy: float

    @property
    def gap(self) -> float:
        """Calibration gap |confidence - accuracy| of the bin."""
        return abs(self.mean_confidence - self.mean_accuracy)


def reliability_diagram(probs: np.ndarray, labels: np.ndarray, *,
                        num_bins: int = 10) -> List[ReliabilityBin]:
    """Binned confidence-vs-accuracy curve (the ECE decomposition).

    Args:
        probs: posterior-predictive probabilities ``(N, K)``.
        labels: integer labels ``(N,)``.
        num_bins: equal-width confidence bins.

    Returns:
        One :class:`ReliabilityBin` per non-degenerate definition bin
        (empty bins are included with ``count=0`` and NaN-free zeros so
        plots stay aligned).
    """
    check_positive_int(num_bins, "num_bins")
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels)
    check_same_length(probs, labels, "probs", "labels")
    if len(labels) == 0:
        raise ValueError("cannot build a reliability diagram of nothing")
    confidence = probs.max(axis=1)
    correct = (probs.argmax(axis=1) == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bin_idx = np.clip(np.digitize(confidence, edges[1:-1], right=True),
                      0, num_bins - 1)
    bins: List[ReliabilityBin] = []
    for b in range(num_bins):
        members = bin_idx == b
        count = int(members.sum())
        if count:
            mean_conf = float(confidence[members].mean())
            mean_acc = float(correct[members].mean())
        else:
            mean_conf = 0.0
            mean_acc = 0.0
        bins.append(ReliabilityBin(
            lower=float(edges[b]), upper=float(edges[b + 1]),
            count=count, mean_confidence=mean_conf,
            mean_accuracy=mean_acc))
    return bins


def ece_from_diagram(bins: List[ReliabilityBin]) -> float:
    """Recompose ECE from a reliability diagram."""
    total = sum(b.count for b in bins)
    if total == 0:
        raise ValueError("diagram has no samples")
    return float(sum(b.count / total * b.gap for b in bins))


class TemperatureScaler:
    """Post-hoc temperature scaling of logits.

    Fits a single temperature ``T > 0`` minimizing the NLL of
    ``softmax(logits / T)`` on a held-out split.  ``T > 1`` softens
    overconfident models; ``T < 1`` sharpens underconfident ones.
    """

    def __init__(self) -> None:
        self.temperature: Optional[float] = None

    def fit(self, logits: np.ndarray, labels: np.ndarray
            ) -> "TemperatureScaler":
        """Fit the temperature on validation logits."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels)
        check_same_length(logits, labels, "logits", "labels")
        if logits.ndim != 2 or len(labels) == 0:
            raise ValueError("logits must be a non-empty (N, K) array")

        idx = np.arange(len(labels))

        def nll_at(log_t: float) -> float:
            t = float(np.exp(log_t))
            logp = log_softmax(logits / t, axis=1)
            return float(-logp[idx, labels].mean())

        result = optimize.minimize_scalar(
            nll_at, bounds=(-4.0, 4.0), method="bounded")
        self.temperature = float(np.exp(result.x))
        return self

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Return calibrated probabilities for ``logits``."""
        if self.temperature is None:
            raise RuntimeError("fit() must run before transform()")
        return softmax(np.asarray(logits, dtype=np.float64)
                       / self.temperature, axis=1)

    def fit_transform(self, logits: np.ndarray,
                      labels: np.ndarray) -> np.ndarray:
        """Fit on ``(logits, labels)`` and return calibrated probs."""
        return self.fit(logits, labels).transform(logits)
