"""Algorithmic metrics used as search objectives (paper Sec. 3.4).

The paper's search aim combines four metrics::

    aim = eta * Accuracy - mu * ECE + beta * aPE - lambda * Latency

* **Accuracy** — fraction of correct posterior-predictive decisions,
* **ECE** — expected calibration error (reliability-diagram binning),
* **aPE** — average predictive entropy on *out-of-distribution* data
  (higher is better: an uncertainty-aware model should be maximally
  unsure about pure noise),
* **Latency** comes from :mod:`repro.hw` and is not defined here.

NLL and the Brier score are provided as supplementary calibration
diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int, check_same_length

_EPS = 1e-12


def _check_probs(probs: np.ndarray) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (N, K), got shape {probs.shape}")
    if probs.size and (probs.min() < -1e-6 or probs.max() > 1 + 1e-6):
        raise ValueError("probs must lie in [0, 1]")
    return np.clip(probs, 0.0, 1.0)


def accuracy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of the posterior predictive, in ``[0, 1]``."""
    probs = _check_probs(probs)
    labels = np.asarray(labels)
    check_same_length(probs, labels, "probs", "labels")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of an empty batch")
    return float((probs.argmax(axis=1) == labels).mean())


def expected_calibration_error(probs: np.ndarray, labels: np.ndarray, *,
                               num_bins: int = 10) -> float:
    """Expected calibration error (ECE) in ``[0, 1]``.

    Standard equal-width confidence binning: the weighted mean absolute
    gap between per-bin confidence and per-bin accuracy.  The paper
    reports ECE in percent; multiply by 100 for that convention.
    """
    check_positive_int(num_bins, "num_bins")
    probs = _check_probs(probs)
    labels = np.asarray(labels)
    check_same_length(probs, labels, "probs", "labels")
    if len(labels) == 0:
        raise ValueError("cannot compute ECE of an empty batch")
    confidence = probs.max(axis=1)
    correct = (probs.argmax(axis=1) == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    # Right-closed bins, with 0.0 falling into the first bin.
    bin_idx = np.clip(np.digitize(confidence, edges[1:-1], right=True), 0,
                      num_bins - 1)
    ece = 0.0
    n = len(labels)
    for b in range(num_bins):
        members = bin_idx == b
        count = int(members.sum())
        if count == 0:
            continue
        gap = abs(correct[members].mean() - confidence[members].mean())
        ece += (count / n) * gap
    return float(ece)


def average_predictive_entropy(probs: np.ndarray) -> float:
    """Mean predictive entropy in nats (the paper's aPE metric).

    Evaluated on OOD noise data, larger aPE indicates the model
    correctly signals high uncertainty away from the data manifold.
    """
    probs = _check_probs(probs)
    if probs.shape[0] == 0:
        raise ValueError("cannot compute aPE of an empty batch")
    entropy = -(probs * np.log(probs + _EPS)).sum(axis=1)
    return float(entropy.mean())


def negative_log_likelihood(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of the true labels, in nats."""
    probs = _check_probs(probs)
    labels = np.asarray(labels)
    check_same_length(probs, labels, "probs", "labels")
    if len(labels) == 0:
        raise ValueError("cannot compute NLL of an empty batch")
    picked = probs[np.arange(len(labels)), labels]
    return float(-np.log(picked + _EPS).mean())


def brier_score(probs: np.ndarray, labels: np.ndarray) -> float:
    """Multi-class Brier score (mean squared error against one-hot)."""
    probs = _check_probs(probs)
    labels = np.asarray(labels)
    check_same_length(probs, labels, "probs", "labels")
    if len(labels) == 0:
        raise ValueError("cannot compute Brier score of an empty batch")
    onehot = np.zeros_like(probs)
    onehot[np.arange(len(labels)), labels] = 1.0
    return float(((probs - onehot) ** 2).sum(axis=1).mean())


def max_entropy(num_classes: int) -> float:
    """Entropy of the uniform distribution — the aPE upper bound."""
    check_positive_int(num_classes, "num_classes")
    return float(np.log(num_classes))


def ood_auroc(scores_id: np.ndarray, scores_ood: np.ndarray) -> float:
    """AUROC of OOD detection from uncertainty scores.

    Computes the probability that a random OOD sample receives a higher
    uncertainty score (e.g. predictive entropy) than a random
    in-distribution sample, via the rank-sum (Mann-Whitney) statistic.
    0.5 is chance; 1.0 is perfect separation.

    Args:
        scores_id: uncertainty scores of in-distribution inputs.
        scores_ood: uncertainty scores of OOD inputs.
    """
    scores_id = np.asarray(scores_id, dtype=np.float64).ravel()
    scores_ood = np.asarray(scores_ood, dtype=np.float64).ravel()
    if scores_id.size == 0 or scores_ood.size == 0:
        raise ValueError("both score sets must be non-empty")
    combined = np.concatenate([scores_id, scores_ood])
    # Average ranks so exact ties contribute 0.5, keeping the
    # chance-level AUROC at exactly 0.5.
    order = combined.argsort(kind="mergesort")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    for value in np.unique(combined):
        members = combined == value
        if members.sum() > 1:
            ranks[members] = ranks[members].mean()
    n_id = scores_id.size
    n_ood = scores_ood.size
    rank_sum_ood = ranks[n_id:].sum()
    u = rank_sum_ood - n_ood * (n_ood + 1) / 2.0
    return float(u / (n_id * n_ood))
