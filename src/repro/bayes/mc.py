"""Monte-Carlo dropout inference (paper Sec. 2.1.2) — two engines.

A dropout-based BayesNN produces its predictive distribution by running
``T`` stochastic forward passes with dropout *enabled at inference*;
each pass draws a fresh dropout mask (dynamic designs) or rotates to the
next pre-generated mask (Masksembles).  The Monte-Carlo average of the
per-pass softmax outputs approximates the Bayesian posterior predictive.

Engines
-------

``looped``
    The reference oracle: ``T`` sequential stochastic forward passes,
    exactly the textbook formulation.  Kept deliberately simple so its
    correctness is obvious; the batched engine is verified against it.

``batched`` (default)
    The production fast path.  The ``T`` Monte-Carlo samples are folded
    into a single forward pass: the deterministic *prefix* of the
    network (everything upstream of the first stochastic dropout layer)
    is computed once, the first stochastic layer tiles its activation
    to ``T * N`` rows, and the rest of the network processes all
    samples in one fused sweep under
    :func:`repro.nn.inference.inference_mode` (no backward caches).

Equivalence contract (enforced by ``tests/test_mc_equivalence.py``):
for every ``batch_size`` the two engines produce **bit-identical**
``MCPrediction.probs``.  Two mechanisms make this possible:

* *Canonical mask plans* — both engines draw all masks through
  :meth:`DropoutLayer.sample_masks` at the full input-batch shape in
  pass-major order, so the random stream is independent of the engine
  and of any micro-batching; ``batch_size`` can split a Monte-Carlo
  sample mid-batch without perturbing a single mask bit.
* *Batch-size-invariant operators* — convolution runs as per-image
  GEMMs, pooling/activations/frozen-norm are row-local, and linear
  layers slice the fused matrix back into per-sample GEMMs
  (:meth:`repro.nn.inference.MCBatchContext.linear_slices`), so every
  row is computed with the same BLAS call shape as in the reference.

Across *different* ``batch_size`` settings the masks are still
identical and probabilities agree to GEMM rounding (the row count of a
BLAS GEMM affects last-bit rounding; see the equivalence suite).

Note: layers that share one ``numpy.random.Generator`` *instance* would
interleave draws differently under a mask plan than under per-pass
in-layer sampling; every constructor in this library hands each layer
an independent stream, which keeps plans bit-compatible with the
pre-plan sequential behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.dropout.base import DropoutLayer
from repro.nn.functional import softmax
from repro.nn.inference import MCBatchContext, inference_mode, mc_batch
from repro.nn.module import Module
from repro.utils.validation import check_positive_int

#: Numerical floor used inside logs.
_EPS = 1e-12

#: Names of the available MC inference engines.
ENGINES = ("batched", "looped")


@dataclass
class MCPrediction:
    """Result of a Monte-Carlo dropout prediction.

    Attributes:
        probs: per-sample softmax outputs, shape ``(T, N, K)``.
        mean_probs: Monte-Carlo posterior predictive, shape ``(N, K)``.
    """

    probs: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of Monte-Carlo forward passes ``T``."""
        return self.probs.shape[0]

    @property
    def mean_probs(self) -> np.ndarray:
        """Posterior predictive mean, shape ``(N, K)``."""
        return self.probs.mean(axis=0)

    def predictions(self) -> np.ndarray:
        """Hard class predictions from the posterior predictive."""
        return self.mean_probs.argmax(axis=1)

    def predictive_entropy(self) -> np.ndarray:
        """Total predictive entropy H[E[p]] per input, in nats.

        Probabilities are clipped into ``[_EPS, 1]`` inside the log, so
        saturated (one-hot) predictions yield exactly zero entropy
        instead of drifting slightly negative (``log(1 + eps) > 0``).
        """
        p = self.mean_probs
        return -(p * np.log(np.clip(p, _EPS, 1.0))).sum(axis=1)

    def expected_entropy(self) -> np.ndarray:
        """Expected per-pass entropy E[H[p]] (aleatoric part), in nats.

        Uses the same log clipping as :meth:`predictive_entropy` so the
        two entropy terms are computed consistently and each per-pass
        entropy is non-negative.
        """
        p = self.probs
        h = -(p * np.log(np.clip(p, _EPS, 1.0))).sum(axis=2)
        return h.mean(axis=0)

    def mutual_information(self) -> np.ndarray:
        """BALD epistemic uncertainty: H[E[p]] - E[H[p]], in nats."""
        return np.maximum(
            self.predictive_entropy() - self.expected_entropy(), 0.0)

    def row_slice(self, start: int, stop: int) -> "MCPrediction":
        """Input rows ``[start, stop)`` as their own prediction.

        The slice-stable entry point of the serving layer
        (:mod:`repro.serve`): every :class:`MCPrediction` reduction —
        ``mean_probs``, :meth:`predictions`, both entropy terms and
        :meth:`mutual_information` — is row-local (a reduction over the
        sample and class axes only), so for any rows of a fused batch

        ``pred.row_slice(a, b).predictive_entropy()``
        is bit-identical to ``pred.predictive_entropy()[a:b]``

        and likewise for every other reduction.  This is what lets a
        micro-batching service hand each caller exactly its rows of a
        fused posterior without recomputing (or perturbing) anything.
        The slice shares memory with the parent prediction.
        """
        if not 0 <= start <= stop <= self.probs.shape[1]:
            raise ValueError(
                f"row slice [{start}, {stop}) out of range for "
                f"{self.probs.shape[1]} rows")
        return MCPrediction(probs=self.probs[:, start:stop])


def _mc_layers(model: Module) -> List[DropoutLayer]:
    """All dropout layers (directly or via slots) inside ``model``."""
    return [m for m in model.modules() if isinstance(m, DropoutLayer)]


def _chunk_bounds(total: int, batch_size: Optional[int]):
    """Yield ``(start, rows)`` micro-batch bounds over ``total`` rows."""
    if batch_size is None or batch_size >= total:
        yield 0, total
        return
    for start in range(0, total, batch_size):
        yield start, min(batch_size, total - start)


def _finish(model: Module, layers: List[DropoutLayer], num_samples: int,
            was_training: bool) -> None:
    """Restore mode and leave sample counters as after ``T`` passes."""
    for layer in layers:
        layer.reset_samples()
        for _ in range(num_samples):
            layer.new_sample()
    if was_training:
        model.train()


def mc_predict_span(model: Module, images: np.ndarray,
                    num_samples: int = 3, *,
                    pass_start: int = 0,
                    pass_stop: Optional[int] = None,
                    batch_size: Optional[int] = None) -> np.ndarray:
    """Passes ``[pass_start, pass_stop)`` of a ``T``-sample prediction.

    The partial-evaluation form of the looped engine: the mask plan is
    still drawn at the canonical ``(num_samples, N, ...)`` full-batch
    shape (the stream is a function of ``num_samples`` and the input
    batch only, never of the span), and each requested pass runs as a
    full-row forward — so ``mc_predict_span(m, x, T, pass_start=a,
    pass_stop=b)`` is bit-identical to ``mc_predict(m, x, T).probs[a:b]``
    for any sub-span.  This is what lets a replica pool
    (:mod:`repro.serve.replicas`) split one fused batch across processes
    along the pass axis without perturbing a single bit: every GEMM in
    every pass keeps the exact row count of the single-process
    reference, which a *row* split would not (BLAS rounding depends on
    the GEMM's row count; see the module docstring).

    Returns the raw probabilities, shape ``(pass_stop - pass_start, N,
    K)`` — a span is not a complete posterior, so it is not wrapped in
    :class:`MCPrediction`.
    """
    check_positive_int(num_samples, "num_samples")
    if pass_stop is None:
        pass_stop = num_samples
    if not 0 <= pass_start < pass_stop <= num_samples:
        raise ValueError(
            f"pass span [{pass_start}, {pass_stop}) out of range for "
            f"{num_samples} Monte-Carlo samples")
    was_training = model.training
    model.eval()
    layers = _mc_layers(model)
    for layer in layers:
        layer.reset_samples()
    n = images.shape[0]
    ctx = MCBatchContext(num_samples, n)
    all_probs = []
    with mc_batch(ctx):
        for t in range(pass_start, pass_stop):
            ctx.set_sample(t)
            chunks = []
            for start, rows in _chunk_bounds(n, batch_size):
                ctx.set_chunk(start, rows)
                chunks.append(model(images[start:start + rows]))
            logits = chunks[0] if len(chunks) == 1 else np.concatenate(
                chunks, axis=0)
            all_probs.append(softmax(logits, axis=1))
    _finish(model, layers, num_samples, was_training)
    return np.stack(all_probs, axis=0)


def mc_predict_looped(model: Module, images: np.ndarray,
                      num_samples: int = 3, *,
                      batch_size: Optional[int] = None) -> MCPrediction:
    """Reference engine: ``T`` sequential stochastic forward passes.

    Masks come from the canonical plan (full-batch shape, pass-major),
    so with ``batch_size=None`` this is bit-identical to the historic
    per-pass in-layer sampling, and with micro-batching the mask stream
    is unchanged — only activations are processed in chunks.
    """
    return MCPrediction(probs=mc_predict_span(
        model, images, num_samples, batch_size=batch_size))


def mc_predict_batched(model: Module, images: np.ndarray,
                       num_samples: int = 3, *,
                       batch_size: Optional[int] = None) -> MCPrediction:
    """Fast engine: all ``T`` samples in one fused forward pass.

    The shared pre-dropout prefix is computed once per chunk; the first
    stochastic dropout layer tiles its activation across samples, and
    the fused suffix runs under :func:`inference_mode`.  ``batch_size``
    bounds the *input* rows per chunk (each chunk still carries all
    ``T`` samples), so the forward working set scales with
    ``T * batch_size`` rather than ``T * len(images)``.  Mask plans are
    the exception: they are always drawn at the canonical full-batch
    shape (that is what makes the random stream micro-batch invariant),
    so each stochastic layer holds one ``(T, N, ...)``-sized mask array
    for the duration of the call.
    """
    check_positive_int(num_samples, "num_samples")
    was_training = model.training
    model.eval()
    layers = _mc_layers(model)
    for layer in layers:
        layer.reset_samples()
    n = images.shape[0]
    ctx = MCBatchContext(num_samples, n)
    chunk_probs = []
    with inference_mode(), mc_batch(ctx):
        for start, rows in _chunk_bounds(n, batch_size):
            ctx.set_sample(None)
            ctx.set_chunk(start, rows)
            logits = model(images[start:start + rows])
            if logits.shape[0] == num_samples * rows:
                stacked = logits.reshape(num_samples, rows, -1)
                chunk_probs.append(softmax(stacked, axis=2))
            elif logits.shape[0] == rows:
                # No stochastic layer fired: all passes are identical,
                # so one softmax is broadcast across the samples.
                p = softmax(logits, axis=1)
                chunk_probs.append(
                    np.broadcast_to(p, (num_samples,) + p.shape))
            else:
                raise RuntimeError(
                    f"model returned batch {logits.shape[0]} for chunk of "
                    f"{rows} rows and {num_samples} MC samples")
    probs = chunk_probs[0] if len(chunk_probs) == 1 else np.concatenate(
        chunk_probs, axis=1)
    _finish(model, layers, num_samples, was_training)
    return MCPrediction(probs=np.ascontiguousarray(probs))


def mc_predict(model: Module, images: np.ndarray, num_samples: int = 3, *,
               batch_size: Optional[int] = None,
               engine: str = "batched") -> MCPrediction:
    """Run ``num_samples`` stochastic forward passes over ``images``.

    The model is put in eval mode (frozen batch-norm statistics) while
    its MC-dropout layers stay stochastic — the defining behaviour of
    dropout-based BayesNN inference.  Static designs rotate through
    their mask families via the canonical mask plan.

    Args:
        model: network containing MC-dropout layers (possibly none, in
            which case all passes are identical).
        images: input batch ``(N, C, H, W)`` or features ``(N, D)``.
        num_samples: number of Monte-Carlo passes ``T`` (the paper's
            experiments use ``T = 3``).
        batch_size: optional micro-batch size (input rows per chunk) to
            bound memory.
        engine: ``"batched"`` (fused fast path, default) or
            ``"looped"`` (sequential reference oracle).  The engines
            are bit-identical for any fixed ``batch_size``; see the
            module docstring.

    Returns:
        An :class:`MCPrediction` with per-pass probabilities.
    """
    if engine == "batched":
        return mc_predict_batched(model, images, num_samples,
                                  batch_size=batch_size)
    if engine == "looped":
        return mc_predict_looped(model, images, num_samples,
                                 batch_size=batch_size)
    raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
