"""Monte-Carlo dropout inference (paper Sec. 2.1.2).

A dropout-based BayesNN produces its predictive distribution by running
``T`` stochastic forward passes with dropout *enabled at inference*;
each pass draws a fresh dropout mask (dynamic designs) or rotates to the
next pre-generated mask (Masksembles).  The Monte-Carlo average of the
per-pass softmax outputs approximates the Bayesian posterior predictive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dropout.base import DropoutLayer
from repro.nn.functional import softmax
from repro.nn.module import Module
from repro.utils.validation import check_positive_int

#: Numerical floor used inside logs.
_EPS = 1e-12


@dataclass
class MCPrediction:
    """Result of a Monte-Carlo dropout prediction.

    Attributes:
        probs: per-sample softmax outputs, shape ``(T, N, K)``.
        mean_probs: Monte-Carlo posterior predictive, shape ``(N, K)``.
    """

    probs: np.ndarray

    @property
    def num_samples(self) -> int:
        """Number of Monte-Carlo forward passes ``T``."""
        return self.probs.shape[0]

    @property
    def mean_probs(self) -> np.ndarray:
        """Posterior predictive mean, shape ``(N, K)``."""
        return self.probs.mean(axis=0)

    def predictions(self) -> np.ndarray:
        """Hard class predictions from the posterior predictive."""
        return self.mean_probs.argmax(axis=1)

    def predictive_entropy(self) -> np.ndarray:
        """Total predictive entropy H[E[p]] per input, in nats."""
        p = self.mean_probs
        return -(p * np.log(p + _EPS)).sum(axis=1)

    def expected_entropy(self) -> np.ndarray:
        """Expected per-pass entropy E[H[p]] (aleatoric part), in nats."""
        h = -(self.probs * np.log(self.probs + _EPS)).sum(axis=2)
        return h.mean(axis=0)

    def mutual_information(self) -> np.ndarray:
        """BALD epistemic uncertainty: H[E[p]] - E[H[p]], in nats."""
        return np.maximum(
            self.predictive_entropy() - self.expected_entropy(), 0.0)


def _mc_layers(model: Module):
    """All dropout layers (directly or via slots) inside ``model``."""
    return [m for m in model.modules() if isinstance(m, DropoutLayer)]


def mc_predict(model: Module, images: np.ndarray, num_samples: int = 3, *,
               batch_size: Optional[int] = None) -> MCPrediction:
    """Run ``num_samples`` stochastic forward passes over ``images``.

    The model is put in eval mode (frozen batch-norm statistics) while
    its MC-dropout layers stay stochastic — the defining behaviour of
    dropout-based BayesNN inference.  Static designs rotate through
    their mask families via ``new_sample``.

    Args:
        model: network containing MC-dropout layers (possibly none, in
            which case all passes are identical).
        images: input batch ``(N, C, H, W)`` or features ``(N, D)``.
        num_samples: number of Monte-Carlo passes ``T`` (the paper's
            experiments use ``T = 3``).
        batch_size: optional micro-batch size to bound memory.

    Returns:
        An :class:`MCPrediction` with per-pass probabilities.
    """
    check_positive_int(num_samples, "num_samples")
    was_training = model.training
    model.eval()
    layers = _mc_layers(model)
    for layer in layers:
        layer.reset_samples()
    all_probs = []
    for _ in range(num_samples):
        if batch_size is None:
            logits = model(images)
        else:
            chunks = [model(images[i:i + batch_size])
                      for i in range(0, images.shape[0], batch_size)]
            logits = np.concatenate(chunks, axis=0)
        all_probs.append(softmax(logits, axis=1))
        for layer in layers:
            layer.new_sample()
    if was_training:
        model.train()
    return MCPrediction(probs=np.stack(all_probs, axis=0))
