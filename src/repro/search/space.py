"""Layer-wise dropout search space (paper Sec. 3.2).

A network exposes ``N`` specified dropout slots; slot ``i`` admits
``M_i`` dropout designs.  A *configuration* commits each slot to one
design, so the space holds ``prod(M_i)`` candidate sub-networks —
uniform configurations (all slots equal) and hybrid ones alike.

Configurations are written in the paper's Table-2 notation: dash-joined
codes such as ``"B-B-M"`` (Bernoulli, Bernoulli, Masksembles).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.dropout.registry import resolve_code
from repro.models.slots import DropoutSlot
from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng

#: A dropout configuration: one design code per specified slot.
DropoutConfig = Tuple[str, ...]


def config_to_string(config: DropoutConfig) -> str:
    """Format a configuration in Table-2 notation, e.g. ``'B-B-M'``."""
    return "-".join(config)


def config_from_string(text: str) -> DropoutConfig:
    """Parse Table-2 notation (``'B-B-M'``) into a configuration."""
    parts = [p.strip() for p in text.split("-") if p.strip()]
    if not parts:
        raise ValueError(f"empty configuration string {text!r}")
    return tuple(resolve_code(p) for p in parts)


@dataclass(frozen=True)
class SlotSpec:
    """Specification of one searchable dropout slot.

    Attributes:
        name: slot name (unique within the space).
        placement: ``'conv'`` or ``'fc'``.
        choices: admissible design codes, in canonical order.
    """

    name: str
    placement: str
    choices: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"slot {self.name!r} has no choices")
        if len(set(self.choices)) != len(self.choices):
            raise ValueError(f"slot {self.name!r} has duplicate choices")


class SearchSpace:
    """The product space over all specified dropout slots.

    Args:
        slots: ordered slot specifications.

    The space supports exact enumeration, uniform sampling (the SPOS
    training distribution), and validation of externally supplied
    configurations.
    """

    def __init__(self, slots: Sequence[SlotSpec]) -> None:
        if not slots:
            raise ValueError("search space needs at least one slot")
        names = [s.name for s in slots]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slot names: {names}")
        self.slots: List[SlotSpec] = list(slots)

    @classmethod
    def from_model(cls, model: Module) -> "SearchSpace":
        """Derive the space from a model's :class:`DropoutSlot` layers."""
        slots = [m for m in model.modules() if isinstance(m, DropoutSlot)]
        if not slots:
            raise ValueError("model exposes no DropoutSlot layers")
        return cls([
            SlotSpec(s.name, s.placement, tuple(s.choices)) for s in slots
        ])

    # ------------------------------------------------------------------
    # Size / membership
    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        """Number of specified dropout layers ``N``."""
        return len(self.slots)

    @property
    def size(self) -> int:
        """Total number of candidate configurations ``prod(M_i)``."""
        size = 1
        for slot in self.slots:
            size *= len(slot.choices)
        return size

    def validate(self, config: DropoutConfig) -> DropoutConfig:
        """Normalize and check that ``config`` belongs to this space."""
        if len(config) != self.num_slots:
            raise ValueError(
                f"configuration {config} has {len(config)} genes; "
                f"space has {self.num_slots} slots")
        normalized = tuple(resolve_code(c) for c in config)
        for gene, slot in zip(normalized, self.slots):
            if gene not in slot.choices:
                raise ValueError(
                    f"design {gene!r} not admissible in slot "
                    f"{slot.name!r} (choices {slot.choices})")
        return normalized

    def __contains__(self, config) -> bool:
        try:
            self.validate(tuple(config))
        except (ValueError, KeyError):
            return False
        return True

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def sample(self, rng: SeedLike = None) -> DropoutConfig:
        """Uniformly sample one configuration (SPOS path sampling)."""
        rng = new_rng(rng)
        return tuple(
            slot.choices[rng.integers(len(slot.choices))]
            for slot in self.slots
        )

    def enumerate(self) -> Iterator[DropoutConfig]:
        """Yield every configuration in lexicographic slot order."""
        return iter(itertools.product(*(s.choices for s in self.slots)))

    def uniform_configs(self) -> List[DropoutConfig]:
        """The uniform (single-design) configurations present in the space.

        These are the paper's manual baselines ('All Bernoulli', ...):
        a design qualifies only if every slot admits it.
        """
        common = set(self.slots[0].choices)
        for slot in self.slots[1:]:
            common &= set(slot.choices)
        return [tuple([code] * self.num_slots)
                for code in sorted(common)]

    def is_hybrid(self, config: DropoutConfig) -> bool:
        """True if ``config`` mixes at least two distinct designs."""
        return len(set(config)) > 1

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{s.name}:{'/'.join(s.choices)}" for s in self.slots)
        return f"SearchSpace({inner}; size={self.size})"
