"""Multi-objective evolutionary search (NSGA-II-style).

The paper runs one scalarized search per aim and then *verifies* the
results against the exhaustive Pareto frontier (Fig. 4).  This module
provides the natural generalization: a single evolutionary run that
approximates the whole frontier at once, using non-dominated sorting
with crowding-distance selection (Deb et al., 2002).  One run yields
the full menu of trade-off designs the paper obtains from four
scalarized searches.

Objectives are drawn from :data:`repro.search.exhaustive.METRIC_DIRECTIONS`
(``accuracy`` max, ``ece`` min, ``ape`` max, ``latency_ms`` min, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.evolution import EvolutionConfig, _cache_counts
from repro.search.exhaustive import METRIC_DIRECTIONS
from repro.search.pareto import pareto_mask
from repro.search.space import DropoutConfig, SearchSpace
from repro.utils.rng import SeedLike, new_rng


@dataclass
class MultiObjectiveResult:
    """Outcome of one multi-objective search run."""

    front: List[CandidateResult]
    metrics: Tuple[str, ...]
    num_evaluations: int
    generations: int

    def front_points(self) -> np.ndarray:
        """Objective matrix of the returned front, shape ``(n, k)``."""
        rows = []
        for result in self.front:
            row = result.as_row()
            rows.append([float(row[m]) for m in self.metrics])
        return np.asarray(rows, dtype=np.float64)


def _objective_vector(result: CandidateResult,
                      metrics: Sequence[str]) -> List[float]:
    row = result.as_row()
    return [float(row[m]) for m in metrics]


def _non_dominated_sort(points: np.ndarray,
                        directions: Sequence[str]) -> List[np.ndarray]:
    """Partition points into successive non-dominated fronts."""
    remaining = np.arange(points.shape[0])
    fronts: List[np.ndarray] = []
    while remaining.size:
        mask = pareto_mask(points[remaining], directions)
        fronts.append(remaining[mask])
        remaining = remaining[~mask]
    return fronts


def _crowding_distance(points: np.ndarray) -> np.ndarray:
    """Crowding distance of each point within one front."""
    n, k = points.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(k):
        order = np.argsort(points[:, j])
        span = points[order[-1], j] - points[order[0], j]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span <= 0:
            continue
        gaps = (points[order[2:], j] - points[order[:-2], j]) / span
        distance[order[1:-1]] += gaps
    return distance


class MultiObjectiveSearch:
    """NSGA-II-lite search over dropout configurations.

    Args:
        evaluator: memoizing candidate evaluator.
        metrics: objective names from
            :data:`repro.search.exhaustive.METRIC_DIRECTIONS`.
        config: population/generation budget (mutation and crossover
            settings are shared with the scalarized EA).
        rng: seed or generator.
    """

    def __init__(self, evaluator: CandidateEvaluator,
                 metrics: Sequence[str] = ("ece", "ape", "accuracy"), *,
                 config: EvolutionConfig = None,
                 rng: SeedLike = None) -> None:
        unknown = [m for m in metrics if m not in METRIC_DIRECTIONS]
        if unknown:
            raise KeyError(
                f"unknown metrics {unknown}; known: "
                f"{sorted(METRIC_DIRECTIONS)}")
        if len(metrics) < 2:
            raise ValueError("multi-objective search needs >= 2 metrics")
        self.evaluator = evaluator
        self.metrics = tuple(metrics)
        self.directions = [METRIC_DIRECTIONS[m] for m in metrics]
        self.config = config or EvolutionConfig()
        self.rng = new_rng(rng)
        self.space: SearchSpace = evaluator.supernet.space

    # ------------------------------------------------------------------
    # Genetic operators (shared semantics with the scalarized EA)
    # ------------------------------------------------------------------
    def _mutate(self, parent: DropoutConfig) -> DropoutConfig:
        genes = list(parent)
        for i, slot in enumerate(self.space.slots):
            if self.rng.random() < self.config.mutation_prob:
                genes[i] = slot.choices[self.rng.integers(len(slot.choices))]
        return tuple(genes)

    def _crossover(self, a: DropoutConfig, b: DropoutConfig) -> DropoutConfig:
        return tuple(a[i] if self.rng.random() < 0.5 else b[i]
                     for i in range(self.space.num_slots))

    def _select(self, population: List[DropoutConfig]
                ) -> List[DropoutConfig]:
        """Environmental selection: fronts first, crowding within."""
        results = [self.evaluator.evaluate(c) for c in population]
        points = np.asarray([_objective_vector(r, self.metrics)
                             for r in results])
        fronts = _non_dominated_sort(points, self.directions)
        target = max(2, self.config.population_size // 2)
        chosen: List[DropoutConfig] = []
        for front in fronts:
            if len(chosen) + front.size <= target:
                chosen.extend(population[i] for i in front)
            else:
                crowd = _crowding_distance(points[front])
                order = front[np.argsort(-crowd)]
                for i in order[: target - len(chosen)]:
                    chosen.append(population[i])
            if len(chosen) >= target:
                break
        return chosen

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> MultiObjectiveResult:
        """Execute the search and return the final non-dominated set."""
        cfg = self.config
        # Shared evaluators accumulate across searches; report this
        # run's fresh-evaluation delta, as the single-aim searches do.
        _, start_misses = _cache_counts(self.evaluator)
        population: List[DropoutConfig] = []
        seen = set()
        if cfg.seed_uniform:
            for config in self.space.uniform_configs():
                if len(population) >= cfg.population_size:
                    break
                population.append(config)
                seen.add(config)
        attempts = 0
        while (len(population) < cfg.population_size
               and attempts < 50 * cfg.population_size):
            candidate = self.space.sample(self.rng)
            attempts += 1
            if candidate not in seen or len(seen) >= self.space.size:
                population.append(candidate)
                seen.add(candidate)

        for _ in range(cfg.generations):
            parents = self._select(population)
            children: List[DropoutConfig] = []
            while len(parents) + len(children) < cfg.population_size:
                if self.rng.random() < cfg.mutation_fraction:
                    child = self._mutate(
                        parents[self.rng.integers(len(parents))])
                else:
                    child = self._crossover(
                        parents[self.rng.integers(len(parents))],
                        parents[self.rng.integers(len(parents))])
                children.append(child)
            population = parents + children

        results = [self.evaluator.evaluate(c) for c in population]
        # Deduplicate configs, then return the non-dominated subset.
        unique: Dict[DropoutConfig, CandidateResult] = {
            r.config: r for r in results}
        final = list(unique.values())
        points = np.asarray([_objective_vector(r, self.metrics)
                             for r in final])
        mask = pareto_mask(points, self.directions)
        front = [r for r, keep in zip(final, mask) if keep]
        return MultiObjectiveResult(
            front=front,
            metrics=self.metrics,
            num_evaluations=(_cache_counts(self.evaluator)[1]
                             - start_misses),
            generations=cfg.generations,
        )
