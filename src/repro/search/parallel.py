"""Process-parallel candidate evaluation (the search-phase fast path).

The paper's search cost is dominated by candidate evaluation; the
batched MC engine made each candidate cheap, and this module removes
the remaining serialization *across* a generation: the cache-miss
candidates of one EA generation are sharded over ``num_workers``
forked worker processes, mirroring how FPGA BNN accelerators amortize
Monte-Carlo cost over parallel hardware lanes.

Design notes:

* **Fork, not spawn.**  Workers are forked per generation, so they
  inherit the parent's trained supernet weights, datasets and fitted
  latency model copy-on-write — nothing is pickled on the way in, only
  the small :class:`~repro.search.evaluator.CandidateResult` records
  travel back.  On platforms without ``fork`` (Windows),
  :meth:`ParallelEvaluator.available` is False and callers fall back
  to the serial path.
* **Bit-identical by construction.**  The evaluator's per-candidate
  ``eval_seed`` reseeding makes every evaluation a pure function of
  the configuration, so shard boundaries, worker count and completion
  order cannot change a single bit of any result — the property the
  equivalence suite (``tests/test_parallel_eval.py``) enforces.
* **Caches stay in the parent.**  Workers only *compute*; the parent
  merges results into the memo cache and writes the disk cache, so
  there are no concurrent writers.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence

from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.space import DropoutConfig
from repro.utils.validation import check_positive_int

#: Fork-inherited handle the pooled workers evaluate through.  Set by
#: the parent immediately before forking; never used across threads.
_PARENT_EVALUATOR: Optional[CandidateEvaluator] = None


def _evaluate_shard(shard: Sequence[DropoutConfig]
                    ) -> List[CandidateResult]:
    """Worker entry point: compute one shard of configurations.

    Runs in a forked child, so ``_PARENT_EVALUATOR`` is the parent's
    evaluator object (private copy-on-write copy); ``_compute``
    reseeds per candidate, making the child's results identical to
    what the parent would have computed inline.
    """
    evaluator = _PARENT_EVALUATOR
    if evaluator is None:  # pragma: no cover - defensive
        raise RuntimeError("worker forked without a parent evaluator")
    return [evaluator._compute(config) for config in shard]


class ParallelEvaluator:
    """Shards cache-miss candidates across forked worker processes.

    Args:
        evaluator: the parent evaluator whose ``_compute`` the workers
            run; must carry an ``eval_seed`` (enforced here and by
            :class:`~repro.search.evaluator.BatchedEvaluator`).
        num_workers: maximum worker processes; the pool never spawns
            more workers than it has candidates.
    """

    def __init__(self, evaluator: CandidateEvaluator, *,
                 num_workers: int) -> None:
        check_positive_int(num_workers, "num_workers")
        if evaluator.eval_seed is None:
            raise ValueError(
                "ParallelEvaluator requires an evaluator with eval_seed "
                "set; see the determinism contract in repro.search."
                "evaluator")
        self.evaluator = evaluator
        self.num_workers = int(num_workers)

    @staticmethod
    def available() -> bool:
        """True when the fork start method exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    def shard(self, configs: Sequence[DropoutConfig]
              ) -> List[List[DropoutConfig]]:
        """Split ``configs`` into contiguous, near-equal worker shards."""
        workers = min(self.num_workers, len(configs))
        base, extra = divmod(len(configs), workers)
        shards: List[List[DropoutConfig]] = []
        start = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            shards.append(list(configs[start:start + size]))
            start += size
        return shards

    def compute(self, configs: Sequence[DropoutConfig]
                ) -> List[CandidateResult]:
        """Compute ``configs`` across the pool, preserving input order.

        Pure computation: no cache lookups, stores or counter updates
        happen here — the caller (normally
        :meth:`~repro.search.evaluator.CandidateEvaluator.evaluate_batch`)
        owns those.  Duplicate configurations are deduplicated *before*
        sharding, so each distinct candidate is evaluated exactly once
        no matter how often it occurs, and the results fan back out to
        every occurrence.  Falls back to inline computation for
        degenerate inputs (one distinct candidate, one worker) where
        forking would only add overhead.
        """
        global _PARENT_EVALUATOR
        configs = [tuple(config) for config in configs]
        unique: List[DropoutConfig] = []
        seen = set()
        for config in configs:
            if config not in seen:
                seen.add(config)
                unique.append(config)
        if len(unique) <= 1 or self.num_workers <= 1:
            by_config = {config: self.evaluator._compute(config)
                         for config in unique}
            return [by_config[config] for config in configs]
        shards = self.shard(unique)
        context = multiprocessing.get_context("fork")
        _PARENT_EVALUATOR = self.evaluator
        try:
            with context.Pool(processes=len(shards)) as pool:
                shard_results = pool.map(_evaluate_shard, shards)
        finally:
            _PARENT_EVALUATOR = None
        by_config = {}
        for shard, results in zip(shards, shard_results):
            for config, result in zip(shard, results):
                by_config[config] = result
        return [by_config[config] for config in configs]

    def evaluate(self, configs: Sequence[DropoutConfig]
                 ) -> List[CandidateResult]:
        """Cached evaluation of ``configs``, preserving input order.

        Routed through the parent evaluator's
        :meth:`~repro.search.evaluator.CandidateEvaluator.evaluate_batch`
        store-and-count helper, so every path — pooled, inline
        fallback, single-candidate degenerate case — updates the memo
        and disk caches and the hit/miss counters identically to
        per-candidate :meth:`~repro.search.evaluator.CandidateEvaluator.
        evaluate` calls.
        """
        return self.evaluator.evaluate_batch(configs, compute=self.compute)


__all__ = ["ParallelEvaluator"]
