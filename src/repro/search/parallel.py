"""Process-parallel candidate evaluation (the search-phase fast path).

The paper's search cost is dominated by candidate evaluation; the
batched MC engine made each candidate cheap, and this module removes
the remaining serialization *across* a generation: the cache-miss
candidates of one EA generation are sharded over ``num_workers``
forked worker processes, mirroring how FPGA BNN accelerators amortize
Monte-Carlo cost over parallel hardware lanes.

Design notes:

* **Fork, not spawn.**  Workers are forked per generation, so they
  inherit the parent's trained supernet weights, datasets and fitted
  latency model copy-on-write — nothing is pickled on the way in, only
  the small :class:`~repro.search.evaluator.CandidateResult` records
  travel back.  On platforms without ``fork`` (Windows),
  :meth:`ParallelEvaluator.available` is False and callers fall back
  to the serial path.
* **Bit-identical by construction.**  The evaluator's per-candidate
  ``eval_seed`` reseeding makes every evaluation a pure function of
  the configuration, so shard boundaries, worker count and completion
  order cannot change a single bit of any result — the property the
  equivalence suite (``tests/test_parallel_eval.py``) enforces.
* **Caches stay in the parent.**  Workers only *compute*; the parent
  merges results into the memo cache and writes the disk cache, so
  there are no concurrent writers.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.faults.runtime import SITE_PARALLEL_EVAL, fire
from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.space import DropoutConfig
from repro.utils.validation import check_positive_int

#: Fork-inherited handle the pooled workers evaluate through.  Set by
#: the parent immediately before forking; never used across threads.
_PARENT_EVALUATOR: Optional[CandidateEvaluator] = None


@dataclass(frozen=True)
class _ShardFault:
    """Picklable per-candidate failure report from a pooled worker.

    A candidate whose evaluation raised (or was flagged for an injected
    transient error by the parent) comes back as this sentinel rather
    than crashing the shard; the parent retries the pure computation
    inline, so one bad candidate never costs its shard-mates' results.
    """

    message: str


def _evaluate_shard(payload: Tuple[Sequence[DropoutConfig],
                                   FrozenSet[int]]) -> List[object]:
    """Worker entry point: compute one shard of configurations.

    Runs in a forked child, so ``_PARENT_EVALUATOR`` is the parent's
    evaluator object (private copy-on-write copy); ``_compute``
    reseeds per candidate, making the child's results identical to
    what the parent would have computed inline.  ``payload`` is
    ``(shard, poisoned)``: candidates at the poisoned local indices
    raise an injected transient error.  Any per-candidate exception is
    reported as :class:`_ShardFault` in that candidate's slot.
    """
    evaluator = _PARENT_EVALUATOR
    if evaluator is None:  # pragma: no cover - defensive
        raise RuntimeError("worker forked without a parent evaluator")
    shard, poisoned = payload
    results: List[object] = []
    for index, config in enumerate(shard):
        try:
            if index in poisoned:
                raise RuntimeError("injected transient evaluation error")
            results.append(evaluator._compute(config))
        except Exception as exc:  # repro: allow[broad-except] — reported, parent retries inline
            results.append(_ShardFault(f"{type(exc).__name__}: {exc}"))
    return results


class ParallelEvaluator:
    """Shards cache-miss candidates across forked worker processes.

    Args:
        evaluator: the parent evaluator whose ``_compute`` the workers
            run; must carry an ``eval_seed`` (enforced here and by
            :class:`~repro.search.evaluator.BatchedEvaluator`).
        num_workers: maximum worker processes; the pool never spawns
            more workers than it has candidates.
    """

    def __init__(self, evaluator: CandidateEvaluator, *,
                 num_workers: int) -> None:
        check_positive_int(num_workers, "num_workers")
        if evaluator.eval_seed is None:
            raise ValueError(
                "ParallelEvaluator requires an evaluator with eval_seed "
                "set; see the determinism contract in repro.search."
                "evaluator")
        self.evaluator = evaluator
        self.num_workers = int(num_workers)
        #: Candidates recomputed inline after a worker-side fault.
        self.fault_retries = 0
        #: Faults injected at :data:`SITE_PARALLEL_EVAL` so far.
        self.injected_faults = 0

    @staticmethod
    def available() -> bool:
        """True when the fork start method exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    def shard(self, configs: Sequence[DropoutConfig]
              ) -> List[List[DropoutConfig]]:
        """Split ``configs`` into contiguous, near-equal worker shards."""
        workers = min(self.num_workers, len(configs))
        base, extra = divmod(len(configs), workers)
        shards: List[List[DropoutConfig]] = []
        start = 0
        for index in range(workers):
            size = base + (1 if index < extra else 0)
            shards.append(list(configs[start:start + size]))
            start += size
        return shards

    def compute(self, configs: Sequence[DropoutConfig]
                ) -> List[CandidateResult]:
        """Compute ``configs`` across the pool, preserving input order.

        Pure computation: no cache lookups, stores or counter updates
        happen here — the caller (normally
        :meth:`~repro.search.evaluator.CandidateEvaluator.evaluate_batch`)
        owns those.  Duplicate configurations are deduplicated *before*
        sharding, so each distinct candidate is evaluated exactly once
        no matter how often it occurs, and the results fan back out to
        every occurrence.  Falls back to inline computation for
        degenerate inputs (one distinct candidate, one worker) where
        forking would only add overhead.

        Resilience: the parent fires :data:`SITE_PARALLEL_EVAL` once
        per distinct candidate (keeping injector state parent-side);
        ``error`` events poison that candidate inside its shard, and
        any candidate a worker reports as failed — injected or real —
        is recomputed inline by the parent.  Evaluation is a pure
        function of the configuration, so the retried result is
        bit-identical and the returned list never contains sentinels.
        """
        global _PARENT_EVALUATOR
        configs = [tuple(config) for config in configs]
        unique: List[DropoutConfig] = []
        seen = set()
        for config in configs:
            if config not in seen:
                seen.add(config)
                unique.append(config)
        poisoned_configs = set()
        for config in unique:
            event = fire(SITE_PARALLEL_EVAL)
            if event is not None and event.kind == "error":
                self.injected_faults += 1
                poisoned_configs.add(config)
        if len(unique) <= 1 or self.num_workers <= 1:
            by_config = {}
            for config in unique:
                if config in poisoned_configs:
                    # Injected fault on the inline path: the "retry"
                    # is the same pure computation, done immediately.
                    self.fault_retries += 1
                by_config[config] = self.evaluator._compute(config)
            return [by_config[config] for config in configs]
        shards = self.shard(unique)
        payloads = [
            (shard, frozenset(index for index, config in enumerate(shard)
                              if config in poisoned_configs))
            for shard in shards
        ]
        context = multiprocessing.get_context("fork")
        _PARENT_EVALUATOR = self.evaluator
        try:
            with context.Pool(processes=len(shards)) as pool:
                shard_results = pool.map(_evaluate_shard, payloads)
        finally:
            _PARENT_EVALUATOR = None
        by_config = {}
        for shard, results in zip(shards, shard_results):
            for config, result in zip(shard, results):
                if isinstance(result, _ShardFault):
                    self.fault_retries += 1
                    result = self.evaluator._compute(config)
                by_config[config] = result
        return [by_config[config] for config in configs]

    def evaluate(self, configs: Sequence[DropoutConfig]
                 ) -> List[CandidateResult]:
        """Cached evaluation of ``configs``, preserving input order.

        Routed through the parent evaluator's
        :meth:`~repro.search.evaluator.CandidateEvaluator.evaluate_batch`
        store-and-count helper, so every path — pooled, inline
        fallback, single-candidate degenerate case — updates the memo
        and disk caches and the hit/miss counters identically to
        per-candidate :meth:`~repro.search.evaluator.CandidateEvaluator.
        evaluate` calls.
        """
        return self.evaluator.evaluate_batch(configs, compute=self.compute)


__all__ = ["ParallelEvaluator"]
