"""Pareto-dominance utilities for the Figure-4 analysis.

The paper plots every configuration in (ECE, aPE, Accuracy) space and
shows the searched configurations land on the reference Pareto frontier.
These helpers implement dominance with per-objective directions so the
same code serves any metric subset.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Direction labels: maximize or minimize each objective.
MAXIMIZE = "max"
MINIMIZE = "min"


def _oriented(points: np.ndarray, directions: Sequence[str]) -> np.ndarray:
    """Flip minimized columns so that larger is uniformly better."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    if points.shape[1] != len(directions):
        raise ValueError(
            f"{points.shape[1]} objectives but {len(directions)} directions")
    oriented = points.copy()
    for j, direction in enumerate(directions):
        if direction == MINIMIZE:
            oriented[:, j] = -oriented[:, j]
        elif direction != MAXIMIZE:
            raise ValueError(
                f"direction must be 'max' or 'min', got {direction!r}")
    return oriented


def dominates(a: Sequence[float], b: Sequence[float],
              directions: Sequence[str]) -> bool:
    """True if point ``a`` Pareto-dominates point ``b``.

    ``a`` dominates ``b`` when it is at least as good in every objective
    and strictly better in at least one.
    """
    pts = _oriented(np.array([a, b]), directions)
    return bool(np.all(pts[0] >= pts[1]) and np.any(pts[0] > pts[1]))


def pareto_mask(points: np.ndarray, directions: Sequence[str]) -> np.ndarray:
    """Boolean mask of non-dominated points.

    Duplicate points are all retained (none strictly dominates another).
    """
    oriented = _oriented(points, directions)
    n = oriented.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        ge = np.all(oriented >= oriented[i], axis=1)
        gt = np.any(oriented > oriented[i], axis=1)
        if np.any(ge & gt):
            mask[i] = False
    return mask


def pareto_front(points: np.ndarray,
                 directions: Sequence[str]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (front_points, front_indices) of the non-dominated set."""
    points = np.asarray(points, dtype=np.float64)
    mask = pareto_mask(points, directions)
    idx = np.flatnonzero(mask)
    return points[idx], idx


def is_on_front(point: Sequence[float], points: np.ndarray,
                directions: Sequence[str]) -> bool:
    """True if ``point`` is not dominated by any row of ``points``."""
    point = np.asarray(point, dtype=np.float64)
    for other in np.asarray(points, dtype=np.float64):
        if dominates(other, point, directions):
            return False
    return True
