"""Evolutionary dropout search — paper Sec. 3.4 and Fig. 3.

Four stages per generation:

1. **Population** — random configurations fill the initial pool;
2. **Evaluation** — every candidate is scored on the validation set
   (and the hardware cost model) under the scalarized aim, Eq. (2);
3. **Selection** — the top-scoring candidates become the parents;
4. **Crossover & mutation** — a fraction of the parents mutate (each
   gene flips to a random admissible design with probability
   ``mutation_prob``); the rest produce children by uniform crossover
   (each gene swaps between a random parent pair).

The loop repeats for a fixed number of generations, tracking the best
configuration seen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.objective import SearchAim
from repro.search.space import DropoutConfig, SearchSpace
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import (
    check_fraction,
    check_known_fields,
    check_positive_int,
)


@dataclass
class EvolutionConfig:
    """Hyper-parameters of the evolutionary search.

    ``seed_uniform`` injects the uniform (single-design) configurations
    into the initial population: the paper's manual baselines are then
    guaranteed to be evaluated, so the searched result can never fall
    behind them under any aim.
    """

    population_size: int = 16
    generations: int = 8
    parent_fraction: float = 0.5
    mutation_fraction: float = 0.5
    mutation_prob: float = 0.25
    seed_uniform: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size")
        check_positive_int(self.generations, "generations")
        check_fraction(self.parent_fraction, "parent_fraction",
                       inclusive_low=False, inclusive_high=True)
        check_fraction(self.mutation_fraction, "mutation_fraction",
                       inclusive_high=True)
        check_fraction(self.mutation_prob, "mutation_prob",
                       inclusive_high=True)


def _requests_so_far(evaluator) -> int:
    """Total evaluation requests an evaluator has served so far.

    Memoizing evaluators expose ``num_requests`` (cache hits plus
    misses) — the honest budget measure, which keeps trajectories and
    Table-2 cost rows accurate on resumed/cache-warmed runs where the
    miss count alone under-reports.  Plain evaluators fall back to
    their ``num_evaluations`` counter.
    """
    requests = getattr(evaluator, "num_requests", None)
    if requests is not None:
        return int(requests)
    return int(evaluator.num_evaluations)


def _cache_counts(evaluator):
    """``(cache_hits, cache_misses)`` with plain-evaluator fallbacks."""
    hits = int(getattr(evaluator, "cache_hits", 0))
    misses = int(getattr(evaluator, "cache_misses",
                         evaluator.num_evaluations))
    return hits, misses


def mutate_config(space: SearchSpace, rng, parent: DropoutConfig,
                  mutation_prob: float) -> DropoutConfig:
    """Flip each gene to a random admissible design with prob ``p``.

    The genetic mutation operator, shared by the lock-step and
    steady-state loops; draws exactly one uniform per slot (plus one
    index per flipped gene), so factoring it out preserves historic
    RNG streams bit-for-bit.
    """
    genes = list(parent)
    for i, slot in enumerate(space.slots):
        if rng.random() < mutation_prob:
            genes[i] = slot.choices[rng.integers(len(slot.choices))]
    return tuple(genes)


def crossover_configs(space: SearchSpace, rng, a: DropoutConfig,
                      b: DropoutConfig) -> DropoutConfig:
    """Uniform crossover: each gene comes from a random parent."""
    return tuple(
        a[i] if rng.random() < 0.5 else b[i]
        for i in range(space.num_slots)
    )


def initial_population(space: SearchSpace, rng, *, population_size: int,
                       seed_uniform: bool) -> List[DropoutConfig]:
    """Random initial population; deduplicated when the space allows it.

    When ``seed_uniform`` is set, the uniform (single-design) baseline
    configurations occupy the first population slots — the paper's
    manual baselines are then guaranteed to be evaluated, so a searched
    result can never fall behind them under any aim.
    """
    population: List[DropoutConfig] = []
    seen = set()
    if seed_uniform:
        for config in space.uniform_configs():
            if len(population) >= population_size:
                break
            population.append(config)
            seen.add(config)
    target = min(population_size, space.size)
    attempts = 0
    while len(population) < target and attempts < 50 * target:
        candidate = space.sample(rng)
        attempts += 1
        if candidate not in seen:
            seen.add(candidate)
            population.append(candidate)
    while len(population) < population_size:
        population.append(space.sample(rng))
    return population


#: Spaces up to this size get the deterministic coverage fallback.
_ENUMERABLE_SIZE = 4096


def propose_novel(space: SearchSpace, rng, produce, pool: set,
                  proposed: set) -> DropoutConfig:
    """Draw a candidate from ``produce``, retrying to escape duplicates.

    Prefers configurations the calling run has never proposed; falls
    back to avoiding the current ``pool``, and on small spaces sweeps
    the remaining unproposed configurations deterministically so that a
    budget exceeding the space size guarantees full coverage.  The
    paper's sampling stage keeps drawing "until the candidate pool
    reaches the predefined size" — this is the de-duplicated version of
    that loop, shared by the lock-step :class:`EvolutionarySearch` and
    the steady-state :mod:`repro.search.async_ea` proposal stream.
    """
    for attempt in range(24):
        child = produce()
        if child in pool:
            continue
        if child in proposed and attempt < 12:
            continue
        return child
    fallback = None
    for _ in range(24):
        child = space.sample(rng)
        if child in pool:
            continue
        if child not in proposed:
            return child
        if fallback is None:
            fallback = child
    if space.size <= _ENUMERABLE_SIZE:
        for child in space.enumerate():
            if child not in proposed and child not in pool:
                return child
    return fallback if fallback is not None else space.sample(rng)


@dataclass
class GenerationStats:
    """Per-generation progress record.

    ``evaluations_so_far`` counts evaluation *requests* (cache hits
    plus fresh computations) made by this search since it started —
    the budget it consumed, which stays truthful when caches answer
    part of the work and when the evaluator is shared across runs.
    """

    generation: int
    best_score: float
    mean_score: float
    best_config: DropoutConfig
    evaluations_so_far: int

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "generation": int(self.generation),
            "best_score": float(self.best_score),
            "mean_score": float(self.mean_score),
            "best_config": list(self.best_config),
            "evaluations_so_far": int(self.evaluations_so_far),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationStats":
        """Rebuild stats serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "GenerationStats")
        return cls(
            generation=int(data["generation"]),
            best_score=float(data["best_score"]),
            mean_score=float(data["mean_score"]),
            best_config=tuple(data["best_config"]),
            evaluations_so_far=int(data["evaluations_so_far"]),
        )


@dataclass
class SearchResult:
    """Outcome of one evolutionary search run.

    ``num_evaluations`` counts fresh computations (an alias of
    ``cache_misses``, kept for backward compatibility);
    ``cache_hits``/``cache_misses`` split *this run's* evaluation
    requests between cache-served and freshly computed, so resumed or
    cache-warmed runs report their true cost.  All three are deltas
    over the run — evaluators shared across searches (multi-aim specs)
    do not leak one aim's cost into another's result.
    """

    best: CandidateResult
    best_score: float
    history: List[GenerationStats] = field(default_factory=list)
    num_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def best_config(self) -> DropoutConfig:
        """The winning configuration."""
        return self.best.config

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "best": self.best.to_dict(),
            "best_score": float(self.best_score),
            "history": [stats.to_dict() for stats in self.history],
            "num_evaluations": int(self.num_evaluations),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "SearchResult")
        return cls(
            best=CandidateResult.from_dict(data["best"]),
            best_score=float(data["best_score"]),
            history=[GenerationStats.from_dict(h)
                     for h in data.get("history", [])],
            num_evaluations=int(data.get("num_evaluations", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            # Pre-split artifacts carry only num_evaluations, which
            # counted exactly the misses — default to it so the
            # num_evaluations == cache_misses invariant survives
            # deserialization of old records.
            cache_misses=int(data.get(
                "cache_misses", data.get("num_evaluations", 0))),
        )


class EvolutionarySearch:
    """SPOS-style evolutionary search over dropout configurations.

    Args:
        evaluator: memoizing candidate evaluator (supplies Eq.-2
            inputs).
        aim: scalarized search aim.
        config: EA hyper-parameters.
        rng: seed or generator.
    """

    def __init__(self, evaluator: CandidateEvaluator, aim: SearchAim, *,
                 config: Optional[EvolutionConfig] = None,
                 rng: SeedLike = None) -> None:
        self.evaluator = evaluator
        self.aim = aim
        self.config = config or EvolutionConfig()
        self.rng = new_rng(rng)
        self.space: SearchSpace = evaluator.supernet.space

    # ------------------------------------------------------------------
    # Genetic operators
    # ------------------------------------------------------------------
    def _mutate(self, parent: DropoutConfig) -> DropoutConfig:
        """Flip each gene to a random admissible design with prob p."""
        return mutate_config(self.space, self.rng, parent,
                             self.config.mutation_prob)

    def _crossover(self, a: DropoutConfig, b: DropoutConfig) -> DropoutConfig:
        """Uniform crossover: each gene comes from a random parent."""
        return crossover_configs(self.space, self.rng, a, b)

    def _initial_population(self) -> List[DropoutConfig]:
        """Random population via the shared :func:`initial_population`."""
        return initial_population(
            self.space, self.rng,
            population_size=self.config.population_size,
            seed_uniform=self.config.seed_uniform)

    #: Spaces up to this size get the deterministic coverage fallback.
    _ENUMERABLE_SIZE = 4096

    def _novel_child(self, produce, pool: set,
                     proposed: set) -> DropoutConfig:
        """Draw a child, retrying to escape duplicates.

        Delegates to the shared :func:`propose_novel` helper (also used
        by the steady-state :mod:`repro.search.async_ea` loop).
        """
        return propose_novel(self.space, self.rng, produce, pool, proposed)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        """Execute the evolutionary search and return the best candidate."""
        cfg = self.config
        population = self._initial_population()
        proposed = set(population)
        history: List[GenerationStats] = []
        best: Optional[Tuple[float, CandidateResult]] = None
        # Counter snapshots: evaluators are shared across searches (all
        # aims of a spec reuse one memoized evaluator), so this run's
        # cost is the *delta* over the run, not the cumulative totals.
        start_hits, start_misses = _cache_counts(self.evaluator)

        evaluate_generation = getattr(
            self.evaluator, "evaluate_generation", None)
        for generation in range(cfg.generations):
            # A generation-aware evaluator (BatchedEvaluator) scores the
            # whole population through the shared supernet in one call;
            # plain evaluators fall back to per-candidate evaluation.
            if evaluate_generation is not None:
                results = evaluate_generation(population)
            else:
                results = [self.evaluator.evaluate(candidate)
                           for candidate in population]
            scored: List[Tuple[float, CandidateResult]] = [
                (result.aim_score(self.aim), result) for result in results]
            scored.sort(key=lambda item: item[0], reverse=True)
            if best is None or scored[0][0] > best[0]:
                best = scored[0]
            history.append(GenerationStats(
                generation=generation,
                best_score=scored[0][0],
                mean_score=float(np.mean([s for s, _ in scored])),
                best_config=scored[0][1].config,
                evaluations_so_far=(_requests_so_far(self.evaluator)
                                    - start_hits - start_misses),
            ))

            num_parents = max(1, int(round(
                cfg.parent_fraction * len(scored))))
            parents = [result.config for _, result in scored[:num_parents]]

            next_population: List[DropoutConfig] = list(parents)
            pool = set(parents)
            num_children = cfg.population_size - len(next_population)
            num_mutants = int(round(cfg.mutation_fraction * num_children))
            for _ in range(num_mutants):
                child = self._novel_child(
                    lambda: self._mutate(
                        parents[self.rng.integers(len(parents))]),
                    pool, proposed)
                next_population.append(child)
                pool.add(child)
                proposed.add(child)
            while len(next_population) < cfg.population_size:
                child = self._novel_child(
                    lambda: self._crossover(
                        parents[self.rng.integers(len(parents))],
                        parents[self.rng.integers(len(parents))]),
                    pool, proposed)
                next_population.append(child)
                pool.add(child)
                proposed.add(child)
            population = next_population

        assert best is not None  # generations >= 1
        hits, misses = _cache_counts(self.evaluator)
        return SearchResult(
            best=best[1],
            best_score=best[0],
            history=history,
            num_evaluations=misses - start_misses,
            cache_hits=hits - start_hits,
            cache_misses=misses - start_misses,
        )


def random_search(evaluator: CandidateEvaluator, aim: SearchAim, *,
                  num_evaluations: int, rng: SeedLike = None) -> SearchResult:
    """Random-sampling baseline with the same evaluation budget.

    Used by the EA-vs-random ablation (bench A3).
    """
    check_positive_int(num_evaluations, "num_evaluations")
    rng = new_rng(rng)
    space = evaluator.supernet.space
    best: Optional[Tuple[float, CandidateResult]] = None
    history: List[GenerationStats] = []
    score_sum = 0.0
    start_hits, start_misses = _cache_counts(evaluator)
    for i in range(num_evaluations):
        result = evaluator.evaluate(space.sample(rng))
        score = result.aim_score(aim)
        score_sum += score
        if best is None or score > best[0]:
            best = (score, result)
        history.append(GenerationStats(
            generation=i,
            best_score=best[0],
            # The running mean over the evaluation window so far — the
            # population-mean analogue the EA records, making the
            # EA-vs-random trajectories (ablation A3) comparable.  A
            # point sample here would pit the EA's population mean
            # against single-candidate noise.
            mean_score=score_sum / (i + 1),
            best_config=best[1].config,
            evaluations_so_far=(_requests_so_far(evaluator)
                                - start_hits - start_misses),
        ))
    assert best is not None
    hits, misses = _cache_counts(evaluator)
    return SearchResult(best=best[1], best_score=best[0], history=history,
                        num_evaluations=misses - start_misses,
                        cache_hits=hits - start_hits,
                        cache_misses=misses - start_misses)
