"""Exhaustive enumeration of a search space (Figure-4 reference sweep).

The paper validates the search by iterating through and evaluating *all*
configurations on the validation set, then checking the EA's picks land
on the reference Pareto frontier.  Feasible whenever ``prod(M_i)`` is
small (LeNet: 4*4*2 = 32; VGG/ResNet: 4^4 = 256).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.objective import SearchAim
from repro.search.pareto import pareto_mask


def evaluate_all(evaluator: CandidateEvaluator) -> List[CandidateResult]:
    """Evaluate every configuration in the evaluator's space, in order."""
    return [evaluator.evaluate(cfg)
            for cfg in evaluator.supernet.space.enumerate()]


def best_by_aim(results: Sequence[CandidateResult],
                aim: SearchAim) -> CandidateResult:
    """The configuration maximizing the scalarized aim."""
    if not results:
        raise ValueError("no results to select from")
    return max(results, key=lambda r: r.aim_score(aim))


def metric_matrix(results: Sequence[CandidateResult],
                  metrics: Sequence[str]) -> np.ndarray:
    """Stack chosen metrics into an ``(n, k)`` matrix.

    Metric names: ``accuracy``, ``ece``, ``ape``, ``latency_ms``,
    ``nll``, ``brier``.
    """
    rows = []
    for result in results:
        row = result.as_row()
        try:
            rows.append([float(row[m]) for m in metrics])
        except KeyError as exc:
            raise KeyError(
                f"unknown metric {exc.args[0]!r}; available: "
                f"{sorted(row)}") from exc
    return np.asarray(rows, dtype=np.float64)


#: Optimization direction of every known metric.
METRIC_DIRECTIONS: Dict[str, str] = {
    "accuracy": "max",
    "ape": "max",
    "ece": "min",
    "latency_ms": "min",
    "nll": "min",
    "brier": "min",
}


def pareto_results(results: Sequence[CandidateResult],
                   metrics: Sequence[str]) -> List[CandidateResult]:
    """Non-dominated subset of ``results`` under ``metrics``."""
    directions = [METRIC_DIRECTIONS[m] for m in metrics]
    points = metric_matrix(results, metrics)
    mask = pareto_mask(points, directions)
    return [r for r, keep in zip(results, mask) if keep]
