"""Candidate evaluation shared by the EA and the exhaustive sweep.

Each candidate configuration is evaluated on the validation split with
the shared supernet weights (accuracy / ECE), on the OOD noise set
(aPE), and on the hardware cost model (latency) — exactly the four
signals the paper's Eq. (2) consumes.  Results are memoized because the
evolutionary algorithm revisits configurations across generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bayes.evaluate import AlgorithmicReport, evaluate_bayesnn
from repro.bayes.mc import ENGINES
from repro.data.dataset import Dataset
from repro.search.objective import SearchAim
from repro.search.space import DropoutConfig, config_to_string
from repro.search.supernet import Supernet
from repro.utils.validation import check_known_fields

#: Signature of a hardware latency oracle: config -> latency in ms.
LatencyFn = Callable[[DropoutConfig], float]


@dataclass
class CandidateResult:
    """Everything measured about one evaluated configuration."""

    config: DropoutConfig
    report: AlgorithmicReport
    latency_ms: float

    @property
    def config_string(self) -> str:
        """Table-2 notation of the configuration."""
        return config_to_string(self.config)

    def aim_score(self, aim: SearchAim) -> float:
        """Scalarized Eq. (2) value under ``aim``."""
        return aim.score(self.report, self.latency_ms)

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table rendering."""
        row = {"config": self.config_string,
               "latency_ms": self.latency_ms}
        row.update(self.report.as_dict())
        return row

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "config": list(self.config),
            "report": self.report.to_dict(),
            "latency_ms": float(self.latency_ms),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CandidateResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "CandidateResult")
        return cls(
            config=tuple(data["config"]),
            report=AlgorithmicReport.from_dict(data["report"]),
            latency_ms=float(data["latency_ms"]),
        )


class CandidateEvaluator:
    """Memoizing evaluator of dropout configurations.

    Args:
        supernet: trained weight-sharing supernet.
        val_data: validation split for accuracy/ECE (the paper
            evaluates algorithmic metrics on the validation set).
        ood_data: Gaussian-noise OOD set for aPE.
        latency_fn: hardware latency oracle (GP cost model or the
            analytic simulator); None fixes latency to 0 for
            algorithm-only studies.
        num_mc_samples: Monte-Carlo passes per evaluation (paper: 3).
        batch_size: optional micro-batch size for memory control.
        engine: MC inference engine (``"batched"`` or ``"looped"``);
            the engines are bit-identical, so scores and therefore the
            search trajectory do not depend on the choice.
    """

    def __init__(self, supernet: Supernet, val_data: Dataset,
                 ood_data: Dataset, *,
                 latency_fn: Optional[LatencyFn] = None,
                 num_mc_samples: int = 3,
                 batch_size: Optional[int] = None,
                 engine: str = "batched") -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"choose from {ENGINES}")
        self.supernet = supernet
        self.val_data = val_data
        self.ood_data = ood_data
        self.latency_fn = latency_fn
        self.num_mc_samples = int(num_mc_samples)
        self.batch_size = batch_size
        self.engine = engine
        self._cache: Dict[DropoutConfig, CandidateResult] = {}
        self.num_evaluations = 0

    def evaluate(self, config: DropoutConfig) -> CandidateResult:
        """Evaluate ``config`` (cached after the first call)."""
        config = self.supernet.space.validate(tuple(config))
        cached = self._cache.get(config)
        if cached is not None:
            return cached
        self.supernet.set_config(config)
        report = evaluate_bayesnn(
            self.supernet, self.val_data, self.ood_data,
            num_samples=self.num_mc_samples, batch_size=self.batch_size,
            engine=self.engine)
        latency = float(self.latency_fn(config)) if self.latency_fn else 0.0
        result = CandidateResult(config=config, report=report,
                                 latency_ms=latency)
        self._cache[config] = result
        self.num_evaluations += 1
        return result

    @property
    def cache(self) -> Dict[DropoutConfig, CandidateResult]:
        """All evaluated candidates so far."""
        return dict(self._cache)

    def preload(self, results) -> int:
        """Warm the memo cache with previously evaluated candidates.

        Used by the ``repro.api`` pipeline to reuse persisted
        evaluations across process restarts; preloaded entries do not
        count toward :attr:`num_evaluations`.  Returns the number of
        entries added (configs outside the space are skipped).
        """
        added = 0
        for result in results:
            try:
                config = self.supernet.space.validate(tuple(result.config))
            except (ValueError, KeyError):
                continue
            if config not in self._cache:
                self._cache[config] = result
                added += 1
        return added


class BatchedEvaluator(CandidateEvaluator):
    """Generation-level evaluator driving the batched MC engine.

    Extends :class:`CandidateEvaluator` with
    :meth:`evaluate_generation`, the entry point the evolutionary
    search uses to score a whole population at once.  Per candidate,
    the ``T`` Monte-Carlo samples are fused into one forward pass by
    the batched engine; across candidates (and across the aims sharing
    this evaluator), the memo cache makes every revisit a dictionary
    lookup, so duplicates within a generation are evaluated once.

    ``generations_evaluated`` counts :meth:`evaluate_generation` calls,
    which benchmarks use to report per-generation amortized cost.
    """

    def __init__(self, supernet: Supernet, val_data: Dataset,
                 ood_data: Dataset, *,
                 latency_fn: Optional[LatencyFn] = None,
                 num_mc_samples: int = 3,
                 batch_size: Optional[int] = None,
                 engine: str = "batched") -> None:
        super().__init__(supernet, val_data, ood_data,
                         latency_fn=latency_fn,
                         num_mc_samples=num_mc_samples,
                         batch_size=batch_size, engine=engine)
        self.generations_evaluated = 0

    def evaluate_generation(self, configs: Sequence[DropoutConfig]
                            ) -> List[CandidateResult]:
        """Score every candidate of one EA generation, in order.

        Duplicate configurations within the generation hit the memo
        cache after their first evaluation; the returned list matches
        ``configs`` positionally, so callers can zip it against their
        population.
        """
        self.generations_evaluated += 1
        return [self.evaluate(config) for config in configs]
