"""Candidate evaluation shared by the EA and the exhaustive sweep.

Each candidate configuration is evaluated on the validation split with
the shared supernet weights (accuracy / ECE), on the OOD noise set
(aPE), and on the hardware cost model (latency) — exactly the four
signals the paper's Eq. (2) consumes.  Results are memoized because the
evolutionary algorithm revisits configurations across generations.

Three layers of reuse stack on top of the raw computation:

1. **Memo cache** — an in-process dict; every revisit of a
   configuration is a lookup.
2. **Disk cache** — an optional content-addressed store (the
   ``EvaluationCache`` protocol of :mod:`repro.api.artifacts`) keyed by
   ``(cache_context, config string)``, so evaluations survive the
   process and are shared *across* runs.
3. **Process pool** — :class:`BatchedEvaluator.evaluate_generation`
   shards a generation's cache misses across forked workers
   (:class:`repro.search.parallel.ParallelEvaluator`).

Determinism contract: with an ``eval_seed`` set, every evaluation is a
pure function of ``(supernet weights, config, data, eval_seed)`` — the
active dropout layers are reseeded per candidate through
:meth:`repro.dropout.base.DropoutLayer.reseed` before the Monte-Carlo
passes, so results do not depend on evaluation order, on which worker
process computed them, or on how a resumed run interleaves cache hits
with fresh work.  That purity is what makes layers 2 and 3 sound (and
is enforced by ``tests/test_parallel_eval.py``).

Accounting: the evaluator tracks ``cache_hits`` (memo or disk lookups
that produced a result) and ``cache_misses`` (fresh computations)
separately; ``num_evaluations`` remains an alias of ``cache_misses``
for backward compatibility, and ``num_requests`` is their sum — the
honest evaluation budget a search consumed, which stays meaningful on
resumed and cache-warmed runs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bayes.evaluate import AlgorithmicReport, evaluate_bayesnn
from repro.bayes.mc import ENGINES
from repro.data.dataset import Dataset
from repro.search.objective import SearchAim
from repro.search.space import DropoutConfig, config_to_string
from repro.search.supernet import Supernet
from repro.utils.rng import derive_seed
from repro.utils.validation import check_known_fields, check_positive_int

#: Signature of a hardware latency oracle: config -> latency in ms.
LatencyFn = Callable[[DropoutConfig], float]


@dataclass
class CandidateResult:
    """Everything measured about one evaluated configuration."""

    config: DropoutConfig
    report: AlgorithmicReport
    latency_ms: float

    @property
    def config_string(self) -> str:
        """Table-2 notation of the configuration."""
        return config_to_string(self.config)

    def aim_score(self, aim: SearchAim) -> float:
        """Scalarized Eq. (2) value under ``aim``."""
        return aim.score(self.report, self.latency_ms)

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table rendering."""
        row = {"config": self.config_string,
               "latency_ms": self.latency_ms}
        row.update(self.report.as_dict())
        return row

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "config": list(self.config),
            "report": self.report.to_dict(),
            "latency_ms": float(self.latency_ms),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CandidateResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "CandidateResult")
        return cls(
            config=tuple(data["config"]),
            report=AlgorithmicReport.from_dict(data["report"]),
            latency_ms=float(data["latency_ms"]),
        )


class CandidateEvaluator:
    """Memoizing evaluator of dropout configurations.

    Args:
        supernet: trained weight-sharing supernet.
        val_data: validation split for accuracy/ECE (the paper
            evaluates algorithmic metrics on the validation set).
        ood_data: Gaussian-noise OOD set for aPE.
        latency_fn: hardware latency oracle (GP cost model or the
            analytic simulator); None fixes latency to 0 for
            algorithm-only studies.
        num_mc_samples: Monte-Carlo passes per evaluation (paper: 3).
        batch_size: optional micro-batch size for memory control.
        engine: MC inference engine (``"batched"`` or ``"looped"``);
            the engines are bit-identical, so scores and therefore the
            search trajectory do not depend on the choice.
        eval_seed: when set, every candidate's mask-plan streams are
            reseeded deterministically from ``(eval_seed, slot,
            config)`` before evaluation, making each result a pure
            function of the configuration (see the module docstring).
            None keeps the legacy order-stateful streams.
        disk_cache: optional cross-run evaluation cache — any object
            with the ``get(context, name)`` / ``put(context, name,
            payload)`` protocol of
            :class:`repro.api.artifacts.EvaluationCache`.
        cache_context: content key scoping disk-cache entries, normally
            :meth:`repro.api.spec.ExperimentSpec.evaluation_fingerprint`.
    """

    def __init__(self, supernet: Supernet, val_data: Dataset,
                 ood_data: Dataset, *,
                 latency_fn: Optional[LatencyFn] = None,
                 num_mc_samples: int = 3,
                 batch_size: Optional[int] = None,
                 engine: str = "batched",
                 eval_seed: Optional[int] = None,
                 disk_cache=None,
                 cache_context: str = "") -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"choose from {ENGINES}")
        self.supernet = supernet
        self.val_data = val_data
        self.ood_data = ood_data
        self.latency_fn = latency_fn
        self.num_mc_samples = int(num_mc_samples)
        self.batch_size = batch_size
        self.engine = engine
        self.eval_seed = None if eval_seed is None else int(eval_seed)
        self.disk_cache = disk_cache
        self.cache_context = str(cache_context)
        self._cache: Dict[DropoutConfig, CandidateResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_evaluations(self) -> int:
        """Fresh (non-cached) evaluations computed — ``cache_misses``."""
        return self.cache_misses

    @property
    def num_requests(self) -> int:
        """Total evaluation requests served: hits plus misses.

        This is the budget-accounting view: a request answered from the
        memo or disk cache still consumed one unit of a search's
        evaluation budget, so trajectories and Table-2 cost rows report
        this number rather than the miss count alone.
        """
        return self.cache_hits + self.cache_misses

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _reseed_for(self, config: DropoutConfig) -> None:
        """Give the active layers their canonical per-candidate streams.

        Dynamic designs are salted with the configuration (each
        candidate draws its own masks); static designs (Masksembles)
        get a config-*independent* stream so the regenerated mask
        family is identical no matter which candidate — or which worker
        process — triggers the generation.
        """
        if self.eval_seed is None:
            return
        salt = zlib.crc32(config_to_string(config).encode("utf-8"))
        for index, layer in enumerate(
                self.supernet.active_dropout_layers()):
            if layer.dynamic:
                layer.reseed(derive_seed(self.eval_seed, index, salt))
            else:
                layer.reseed(derive_seed(self.eval_seed, index))

    def _compute(self, config: DropoutConfig) -> CandidateResult:
        """Evaluate ``config`` from scratch (no caches involved)."""
        self.supernet.set_config(config)
        self._reseed_for(config)
        report = evaluate_bayesnn(
            self.supernet, self.val_data, self.ood_data,
            num_samples=self.num_mc_samples, batch_size=self.batch_size,
            engine=self.engine)
        latency = float(self.latency_fn(config)) if self.latency_fn else 0.0
        return CandidateResult(config=config, report=report,
                               latency_ms=latency)

    def _load_from_disk(self, config: DropoutConfig
                        ) -> Optional[CandidateResult]:
        """Restore ``config`` from the disk cache into the memo cache.

        Any unreadable, torn or mismatched entry is treated as a miss
        (the cache's crash-recovery contract), so a half-written file
        from a killed run costs one re-evaluation, never a crash.
        """
        if self.disk_cache is None:
            return None
        payload = self.disk_cache.get(self.cache_context,
                                      config_to_string(config))
        if payload is None:
            return None
        try:
            result = CandidateResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if tuple(result.config) != tuple(config):
            return None
        self._cache[config] = result
        self.disk_hits += 1
        return result

    def _store(self, config: DropoutConfig,
               result: CandidateResult) -> None:
        """Commit a freshly computed result to the memo and disk caches."""
        self._cache[config] = result
        if self.disk_cache is not None:
            self.disk_cache.put(self.cache_context,
                                config_to_string(config), result.to_dict())

    def evaluate(self, config: DropoutConfig) -> CandidateResult:
        """Evaluate ``config`` (memo- and disk-cached after first call)."""
        config = self.supernet.space.validate(tuple(config))
        cached = self._cache.get(config)
        if cached is not None:
            self.cache_hits += 1
            return cached
        restored = self._load_from_disk(config)
        if restored is not None:
            self.cache_hits += 1
            return restored
        self.cache_misses += 1
        result = self._compute(config)
        self._store(config, result)
        return result

    def evaluate_batch(self, configs: Sequence[DropoutConfig], *,
                       compute: Optional[Callable[
                           [List[DropoutConfig]],
                           List[CandidateResult]]] = None
                       ) -> List[CandidateResult]:
        """Evaluate many configs through one store-and-count path.

        The single choke point every batch evaluation goes through —
        per-candidate :meth:`evaluate` calls, generation batches and
        the process pool all produce identical caching and accounting
        because this method owns both.  Bookkeeping walks ``configs``
        positionally: memoized, disk-cached and within-batch duplicate
        occurrences count as hits; first occurrences of unknown
        configurations count as misses and are deduplicated into a
        pending list.  The pending configs are computed by ``compute``
        (a callable mapping the unique miss list to results in order —
        e.g. a fork pool) or inline via :meth:`_compute`, then stored
        into the memo and disk caches.  Returns results matching
        ``configs`` positionally.
        """
        normalized = [self.supernet.space.validate(tuple(config))
                      for config in configs]
        pending: List[DropoutConfig] = []
        pending_set = set()
        for config in normalized:
            if config in self._cache or config in pending_set:
                self.cache_hits += 1
            elif self._load_from_disk(config) is not None:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                pending.append(config)
                pending_set.add(config)
        if pending:
            if compute is not None:
                results = compute(pending)
            else:
                results = [self._compute(config) for config in pending]
            for config, result in zip(pending, results):
                self._store(config, result)
        return [self._cache[config] for config in normalized]

    @property
    def cache(self) -> Dict[DropoutConfig, CandidateResult]:
        """All evaluated candidates so far."""
        return dict(self._cache)

    def preload(self, results) -> int:
        """Warm the memo cache with previously evaluated candidates.

        Used by the ``repro.api`` pipeline to reuse persisted
        evaluations across process restarts; preloaded entries do not
        count toward any counter until they are actually requested, at
        which point they register as :attr:`cache_hits`.  Returns the
        number of entries added (configs outside the space are
        skipped).
        """
        added = 0
        for result in results:
            try:
                config = self.supernet.space.validate(tuple(result.config))
            except (ValueError, KeyError):
                continue
            if config not in self._cache:
                self._cache[config] = result
                added += 1
        return added


class BatchedEvaluator(CandidateEvaluator):
    """Generation-level evaluator driving the batched MC engine.

    Extends :class:`CandidateEvaluator` with
    :meth:`evaluate_generation`, the entry point the evolutionary
    search uses to score a whole population at once.  Per candidate,
    the ``T`` Monte-Carlo samples are fused into one forward pass by
    the batched engine; across candidates (and across the aims sharing
    this evaluator), the memo cache makes every revisit a dictionary
    lookup, so duplicates within a generation are evaluated once.

    With ``num_workers > 1`` the generation's cache-miss candidates
    are sharded across forked worker processes
    (:class:`repro.search.parallel.ParallelEvaluator`); the per-
    candidate determinism contract (``eval_seed``) makes the pooled
    results — and every counter — bit-identical to the serial path for
    any worker count and shard order.  On platforms without ``fork``
    the pool silently degrades to the serial path.

    ``generations_evaluated`` counts the generations that required at
    least one fresh evaluation; generations answered entirely from the
    caches do not inflate the per-generation amortized-cost reports.
    """

    def __init__(self, supernet: Supernet, val_data: Dataset,
                 ood_data: Dataset, *,
                 latency_fn: Optional[LatencyFn] = None,
                 num_mc_samples: int = 3,
                 batch_size: Optional[int] = None,
                 engine: str = "batched",
                 eval_seed: Optional[int] = None,
                 disk_cache=None,
                 cache_context: str = "",
                 num_workers: int = 1) -> None:
        super().__init__(supernet, val_data, ood_data,
                         latency_fn=latency_fn,
                         num_mc_samples=num_mc_samples,
                         batch_size=batch_size, engine=engine,
                         eval_seed=eval_seed, disk_cache=disk_cache,
                         cache_context=cache_context)
        check_positive_int(num_workers, "num_workers")
        if num_workers > 1 and eval_seed is None:
            raise ValueError(
                "num_workers > 1 requires eval_seed: without per-"
                "candidate seeding, worker processes could not "
                "reproduce the serial path's mask streams bit-exactly")
        self.num_workers = int(num_workers)
        self.generations_evaluated = 0

    def evaluate_generation(self, configs: Sequence[DropoutConfig]
                            ) -> List[CandidateResult]:
        """Score every candidate of one EA generation, in order.

        A thin wrapper over :meth:`CandidateEvaluator.evaluate_batch`
        (which owns all cache bookkeeping) that injects the pooled
        computation path for the deduplicated cache misses and counts
        the generations that required fresh work.  The returned list
        matches ``configs`` positionally, so callers can zip it against
        their population.
        """
        misses_before = self.cache_misses
        results = self.evaluate_batch(configs,
                                      compute=self._compute_pending)
        if self.cache_misses > misses_before:
            self.generations_evaluated += 1
        return results

    def _compute_pending(self, pending: Sequence[DropoutConfig]
                         ) -> List[CandidateResult]:
        """Compute a batch's cache misses, pooled when possible."""
        if self.num_workers > 1 and len(pending) > 1:
            # Imported here: repro.search.parallel imports this module.
            from repro.search.parallel import ParallelEvaluator
            pool = ParallelEvaluator(self, num_workers=self.num_workers)
            if pool.available():
                return pool.compute(pending)
        return [self._compute(config) for config in pending]
