"""Training loops: SPOS supernet training and stand-alone training.

Phase 2 of the framework (paper Sec. 3.3): within each iteration a
candidate sub-network is uniformly sampled by randomly selecting a
dropout design in every specified slot; gradients update the *shared*
weights.  Training and search are thereby decoupled — the supernet is
trained once and every candidate can afterwards be evaluated directly
with shared weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader, Dataset
from repro.nn.module import Module
from repro.search.supernet import Supernet
from repro.utils.rng import SeedLike, child_rng, new_rng
from repro.utils.timers import Timer
from repro.utils.validation import check_known_fields, check_positive_int


@dataclass
class TrainLog:
    """Record of one training run.

    Attributes:
        epoch_losses: mean loss per epoch.
        wall_seconds: total wall-clock training time.
        steps: optimizer steps taken.
    """

    epoch_losses: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    steps: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "epoch_losses": [float(x) for x in self.epoch_losses],
            "wall_seconds": float(self.wall_seconds),
            "steps": int(self.steps),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainLog":
        """Rebuild a log serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "TrainLog")
        return cls(
            epoch_losses=[float(x) for x in data.get("epoch_losses", [])],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            steps=int(data.get("steps", 0)),
        )


@dataclass
class TrainConfig:
    """Hyper-parameters shared by both trainers."""

    epochs: int = 8
    batch_size: int = 32
    lr: float = 2e-3
    weight_decay: float = 0.0
    optimizer: str = "adam"

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(
                f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")


def _build_optimizer(model: Module, cfg: TrainConfig) -> nn.optim.Optimizer:
    if cfg.optimizer == "adam":
        return nn.Adam(model.parameters(), lr=cfg.lr,
                       weight_decay=cfg.weight_decay)
    return nn.SGD(model.parameters(), lr=cfg.lr, momentum=0.9,
                  weight_decay=cfg.weight_decay)


def train_supernet(supernet: Supernet, train_data: Dataset,
                   config: Optional[TrainConfig] = None, *,
                   rng: SeedLike = None) -> TrainLog:
    """Train a supernet with single-path one-shot uniform sampling.

    Every optimizer step first activates a uniformly sampled dropout
    configuration, then performs a standard forward/backward/update on
    the shared weights.

    Args:
        supernet: the weight-sharing supernet to train.
        train_data: training split.
        config: training hyper-parameters (defaults are CI-scale).
        rng: seed; controls both batching and path sampling.

    Returns:
        A :class:`TrainLog` with per-epoch losses and wall time.
    """
    cfg = config or TrainConfig()
    root = new_rng(rng)
    criterion = nn.CrossEntropyLoss()
    optimizer = _build_optimizer(supernet, cfg)
    log = TrainLog()
    supernet.train()
    with Timer() as timer:
        for epoch in range(cfg.epochs):
            loader = DataLoader(train_data, cfg.batch_size,
                                rng=child_rng(root))
            losses = []
            for images, labels in loader:
                supernet.sample_config(root)
                loss = criterion(supernet(images), labels)
                optimizer.zero_grad()
                supernet.backward(criterion.backward())
                optimizer.step()
                losses.append(loss)
                log.steps += 1
            log.epoch_losses.append(float(np.mean(losses)))
    log.wall_seconds = timer.elapsed
    return log


def train_standalone(model: Module, train_data: Dataset,
                     config: Optional[TrainConfig] = None, *,
                     rng: SeedLike = None) -> TrainLog:
    """Train a fixed model (no path sampling).

    Used for the uniform-dropout baselines trained from scratch and for
    the SPOS-fidelity ablation (bench A1).
    """
    cfg = config or TrainConfig()
    root = new_rng(rng)
    criterion = nn.CrossEntropyLoss()
    optimizer = _build_optimizer(model, cfg)
    log = TrainLog()
    model.train()
    with Timer() as timer:
        for epoch in range(cfg.epochs):
            loader = DataLoader(train_data, cfg.batch_size,
                                rng=child_rng(root))
            losses = []
            for images, labels in loader:
                loss = criterion(model(images), labels)
                optimizer.zero_grad()
                model.backward(criterion.backward())
                optimizer.step()
                losses.append(loss)
                log.steps += 1
            log.epoch_losses.append(float(np.mean(losses)))
    log.wall_seconds = timer.elapsed
    return log
