"""Training loops: SPOS supernet training and stand-alone training.

Phase 2 of the framework (paper Sec. 3.3): within each iteration a
candidate sub-network is uniformly sampled by randomly selecting a
dropout design in every specified slot; gradients update the *shared*
weights.  Training and search are thereby decoupled — the supernet is
trained once and every candidate can afterwards be evaluated directly
with shared weights.

Both loops run in one of two bit-identical execution modes
(``TrainConfig.train_mode``):

* ``"fast"`` (default) — fused in-place optimizer updates plus the
  per-layer buffer-reusing training workspace
  (:mod:`repro.nn.fastpath`), so steady-state steps allocate nothing
  activation-sized;
* ``"reference"`` — the allocation-heavy reference trajectory the fast
  path is pinned against (same ``epoch_losses``, same step count, same
  final weight bytes on seeded runs).

Training is resumable at epoch granularity: pass a *checkpointer* (any
object with ``load() -> Optional[TrainCheckpoint]`` and
``save(TrainCheckpoint)``) and every completed epoch persists the model
weights, optimizer moments, RNG state and loss history.  A re-invoked
run restores that state and continues with the exact random stream of
an uninterrupted run, so an interrupted Phase-2 run re-pays zero
completed epochs and still reproduces the uninterrupted trajectory
bit for bit.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro import nn
from repro.data.dataset import DataLoader, Dataset
from repro.dropout.base import DropoutLayer
from repro.nn.fastpath import fast_training
from repro.nn.module import Module
from repro.search.supernet import Supernet
from repro.utils.rng import SeedLike, child_rng, new_rng
from repro.utils.timers import Timer
from repro.utils.validation import check_known_fields, check_positive_int

#: Supported training execution modes (see the module docstring).
TRAIN_MODES = ("fast", "reference")


@dataclass
class TrainLog:
    """Record of one training run.

    Attributes:
        epoch_losses: mean loss per epoch.
        wall_seconds: total wall-clock training time.
        steps: optimizer steps taken.
    """

    epoch_losses: List[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    steps: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "epoch_losses": [float(x) for x in self.epoch_losses],
            "wall_seconds": float(self.wall_seconds),
            "steps": int(self.steps),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrainLog":
        """Rebuild a log serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "TrainLog")
        return cls(
            epoch_losses=[float(x) for x in data.get("epoch_losses", [])],
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            steps=int(data.get("steps", 0)),
        )


@dataclass
class TrainConfig:
    """Hyper-parameters shared by both trainers.

    ``train_mode`` selects the execution path (``"fast"`` or
    ``"reference"``); the two are bit-identical on seeded runs, so the
    knob changes how a trajectory is computed, never what it is.
    """

    epochs: int = 8
    batch_size: int = 32
    lr: float = 2e-3
    weight_decay: float = 0.0
    optimizer: str = "adam"
    train_mode: str = "fast"

    def __post_init__(self) -> None:
        check_positive_int(self.epochs, "epochs")
        check_positive_int(self.batch_size, "batch_size")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(
                f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")
        if self.train_mode not in TRAIN_MODES:
            raise ValueError(
                f"train_mode must be one of {TRAIN_MODES}, "
                f"got {self.train_mode!r}")


@dataclass
class TrainCheckpoint:
    """Epoch-granular snapshot of an in-progress training run.

    Captures everything needed to continue the run exactly where it
    stopped: the trained weights, the optimizer moments (index-keyed,
    see :meth:`repro.nn.optim.Optimizer.state_dict`), the root RNG
    state (which drives both batch shuffling and SPOS path sampling),
    the per-layer dropout mask-stream state (``stochastic_state``; a
    supernet's whole choice bank, see
    :meth:`repro.search.supernet.Supernet.stochastic_state`) and the
    loss history so far.
    """

    epochs_done: int
    epoch_losses: List[float]
    steps: int
    wall_seconds: float
    rng_state: Dict[str, Any]
    model_state: Dict[str, np.ndarray]
    optimizer_state: Dict[str, np.ndarray]
    stochastic_state: Any = None


class MemoryCheckpointer:
    """In-memory checkpointer: the reference checkpoint sink.

    Used by tests and as the minimal example of the checkpointer
    protocol (``load``/``save``).  Durable storage is provided by the
    artifact-store checkpointer in :mod:`repro.api.stages`.
    """

    def __init__(self) -> None:
        self.checkpoint: Optional[TrainCheckpoint] = None
        self.saves = 0

    def load(self) -> Optional[TrainCheckpoint]:
        return self.checkpoint

    def save(self, checkpoint: TrainCheckpoint) -> None:
        self.checkpoint = checkpoint
        self.saves += 1


def _build_optimizer(model: Module, cfg: TrainConfig) -> nn.optim.Optimizer:
    fused = cfg.train_mode == "fast"
    if cfg.optimizer == "adam":
        return nn.Adam(model.parameters(), lr=cfg.lr,
                       weight_decay=cfg.weight_decay, fused=fused)
    return nn.SGD(model.parameters(), lr=cfg.lr, momentum=0.9,
                  weight_decay=cfg.weight_decay, fused=fused)


def _capture_stochastic(model: Module) -> Any:
    """Mask-stream state of every dropout design reachable from ``model``.

    A :class:`~repro.search.supernet.Supernet` exposes its whole choice
    bank; plain models fall back to the active
    :class:`~repro.dropout.base.DropoutLayer` instances discovered by
    the module walk (attribute order, hence deterministic).
    """
    if hasattr(model, "stochastic_state"):
        return {"kind": "model", "state": model.stochastic_state()}
    return {"kind": "layers",
            "state": [m.stochastic_state() for m in model.modules()
                      if isinstance(m, DropoutLayer)]}


def _restore_stochastic(model: Module, snapshot: Any) -> None:
    if snapshot is None:
        return
    if snapshot["kind"] == "model":
        model.load_stochastic_state(snapshot["state"])
        return
    layers = [m for m in model.modules() if isinstance(m, DropoutLayer)]
    states = snapshot["state"]
    if len(layers) != len(states):
        raise ValueError(
            f"checkpoint has {len(states)} dropout-layer states, "
            f"model has {len(layers)} dropout layers")
    for layer, state in zip(layers, states):
        layer.load_stochastic_state(state)


def _snapshot(model: Module, optimizer: nn.optim.Optimizer,
              root: np.random.Generator, log: TrainLog,
              epochs_done: int, base_wall: float,
              timer: Timer) -> TrainCheckpoint:
    return TrainCheckpoint(
        epochs_done=epochs_done,
        epoch_losses=[float(x) for x in log.epoch_losses],
        steps=int(log.steps),
        wall_seconds=base_wall + timer.elapsed,
        rng_state=root.bit_generator.state,
        model_state=model.state_dict(),
        optimizer_state=optimizer.state_dict(),
        stochastic_state=_capture_stochastic(model),
    )


def _restore(checkpoint: TrainCheckpoint, model: Module,
             optimizer: nn.optim.Optimizer, root: np.random.Generator,
             log: TrainLog) -> None:
    model.load_state_dict(checkpoint.model_state)
    optimizer.load_state_dict(checkpoint.optimizer_state)
    _restore_stochastic(model, checkpoint.stochastic_state)
    root.bit_generator.state = checkpoint.rng_state
    log.epoch_losses = [float(x) for x in checkpoint.epoch_losses]
    log.steps = int(checkpoint.steps)


def _train_loop(model: Module, train_data: Dataset, cfg: TrainConfig,
                rng: SeedLike, checkpoint, step_fn) -> TrainLog:
    """The shared epoch/step loop of both trainers.

    ``step_fn(model, images, labels, criterion, optimizer) -> float``
    runs one optimizer step and returns the loss (the supernet variant
    samples a path first).
    """
    root = new_rng(rng)
    criterion = nn.CrossEntropyLoss()
    optimizer = _build_optimizer(model, cfg)
    log = TrainLog()
    start_epoch = 0
    base_wall = 0.0
    if checkpoint is not None:
        state = checkpoint.load()
        if state is not None and 0 < state.epochs_done <= cfg.epochs:
            _restore(state, model, optimizer, root, log)
            start_epoch = state.epochs_done
            base_wall = float(state.wall_seconds)
    model.train()
    mode_ctx = (fast_training() if cfg.train_mode == "fast"
                else nullcontext())
    with Timer() as timer:
        with mode_ctx:
            for epoch in range(start_epoch, cfg.epochs):
                loader = DataLoader(train_data, cfg.batch_size,
                                    rng=child_rng(root))
                losses = []
                for images, labels in loader:
                    losses.append(
                        step_fn(model, images, labels, criterion, optimizer,
                                root))
                    log.steps += 1
                log.epoch_losses.append(float(np.mean(losses)))
                if checkpoint is not None:
                    checkpoint.save(_snapshot(model, optimizer, root, log,
                                              epoch + 1, base_wall, timer))
    log.wall_seconds = base_wall + timer.elapsed
    return log


def _supernet_step(model, images, labels, criterion, optimizer, root):
    model.sample_config(root)
    loss = criterion(model(images), labels)
    optimizer.zero_grad()
    model.backward(criterion.backward())
    optimizer.step()
    return loss


def _standalone_step(model, images, labels, criterion, optimizer, root):
    loss = criterion(model(images), labels)
    optimizer.zero_grad()
    model.backward(criterion.backward())
    optimizer.step()
    return loss


def train_supernet(supernet: Supernet, train_data: Dataset,
                   config: Optional[TrainConfig] = None, *,
                   rng: SeedLike = None, checkpoint=None) -> TrainLog:
    """Train a supernet with single-path one-shot uniform sampling.

    Every optimizer step first activates a uniformly sampled dropout
    configuration, then performs a standard forward/backward/update on
    the shared weights.

    Args:
        supernet: the weight-sharing supernet to train.
        train_data: training split.
        config: training hyper-parameters (defaults are CI-scale).
        rng: seed; controls both batching and path sampling.
        checkpoint: optional checkpointer (``load``/``save``); every
            completed epoch is persisted and a prior partial run is
            resumed bit-exactly (see the module docstring).

    Returns:
        A :class:`TrainLog` with per-epoch losses and wall time.
    """
    return _train_loop(supernet, train_data, config or TrainConfig(), rng,
                       checkpoint, _supernet_step)


def train_standalone(model: Module, train_data: Dataset,
                     config: Optional[TrainConfig] = None, *,
                     rng: SeedLike = None, checkpoint=None) -> TrainLog:
    """Train a fixed model (no path sampling).

    Used for the uniform-dropout baselines trained from scratch and for
    the SPOS-fidelity ablation (bench A1).
    """
    return _train_loop(model, train_data, config or TrainConfig(), rng,
                       checkpoint, _standalone_step)
