"""The scalarized search aim — paper Eq. (2).

``aim = eta * Accuracy - mu * ECE + beta * aPE - lambda * Latency``

Accuracy and ECE enter as fractions in ``[0, 1]``, aPE in nats, latency
in milliseconds.  ECE and latency are *negative* terms because lower is
better.  The per-metric weights express the designer's priorities; the
paper's Table 1 uses four single-metric aims (Accuracy / ECE / aPE /
Latency Optimal), all of which are provided as presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bayes.evaluate import AlgorithmicReport


@dataclass(frozen=True)
class SearchAim:
    """Weights of the scalarized multi-objective aim (Eq. 2).

    Attributes:
        eta: weight of accuracy (maximize).
        mu: weight of ECE (minimize — enters negatively).
        beta: weight of aPE (maximize).
        lam: weight of latency in ms (minimize — enters negatively).
        name: display name for tables.
    """

    eta: float = 0.0
    mu: float = 0.0
    beta: float = 0.0
    lam: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.eta == self.mu == self.beta == self.lam == 0.0:
            raise ValueError("search aim needs at least one nonzero weight")

    def score(self, report: AlgorithmicReport, latency_ms: float) -> float:
        """Evaluate Eq. (2) for one candidate."""
        return (self.eta * report.accuracy
                - self.mu * report.ece
                + self.beta * report.ape
                - self.lam * float(latency_ms))

    def score_parts(self, report: AlgorithmicReport,
                    latency_ms: float) -> Dict[str, float]:
        """Per-term decomposition of the aim (diagnostics)."""
        return {
            "accuracy_term": self.eta * report.accuracy,
            "ece_term": -self.mu * report.ece,
            "ape_term": self.beta * report.ape,
            "latency_term": -self.lam * float(latency_ms),
        }


#: The four single-metric aims of paper Table 1.
ACCURACY_OPTIMAL = SearchAim(eta=1.0, name="Accuracy Optimal")
ECE_OPTIMAL = SearchAim(mu=1.0, name="ECE Optimal")
APE_OPTIMAL = SearchAim(beta=1.0, name="aPE Optimal")
LATENCY_OPTIMAL = SearchAim(lam=1.0, name="Latency Optimal")

#: A balanced aim mixing all four metrics (Sec. 3.4: weights may be
#: prioritized per application).  Accuracy and calibration dominate,
#: with a mild latency pressure in 1/ms units.
BALANCED = SearchAim(eta=1.0, mu=0.5, beta=0.1, lam=0.01, name="Balanced")

#: All presets keyed by short name.
AIM_PRESETS: Dict[str, SearchAim] = {
    "accuracy": ACCURACY_OPTIMAL,
    "ece": ECE_OPTIMAL,
    "ape": APE_OPTIMAL,
    "latency": LATENCY_OPTIMAL,
    "balanced": BALANCED,
}


def get_aim(name_or_aim) -> SearchAim:
    """Resolve a preset name or pass an aim object through.

    Anything exposing ``score(report, latency_ms)`` and ``name`` is
    accepted (e.g. :class:`repro.search.constraints.ConstrainedAim`).
    """
    if isinstance(name_or_aim, SearchAim):
        return name_or_aim
    if callable(getattr(name_or_aim, "score", None)) and hasattr(
            name_or_aim, "name"):
        return name_or_aim
    key = str(name_or_aim).lower()
    if key not in AIM_PRESETS:
        raise KeyError(
            f"unknown aim {name_or_aim!r}; presets: {sorted(AIM_PRESETS)}")
    return AIM_PRESETS[key]
