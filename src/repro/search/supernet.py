"""Weight-sharing supernet for single-path one-shot search (Sec. 3.3).

The supernet holds, in every specified dropout slot, one instance of
each admissible dropout design (the *choice bank*).  Selecting a
configuration activates one design per slot in O(1) without touching the
shared convolution/linear weights — the weight-sharing trick of SPOS
[16] that collapses training cost from ``O(prod M_i)`` to ``O(1)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dropout.base import DropoutLayer
from repro.models.slots import DropoutSlot, collect_slots
from repro.nn.module import Module
from repro.search.space import DropoutConfig, SearchSpace
from repro.utils.rng import SeedLike, child_rng, new_rng


class Supernet(Module):
    """A model whose dropout slots carry full choice banks.

    Args:
        model: backbone with :class:`DropoutSlot` layers.
        p: drop rate given to the dynamic designs in every bank.
        num_masks: Masksembles family size (paper: the MC sampling
            number, 3–4).
        scale: Masksembles overlap scale.
        block_size: Block-dropout patch size.
        rng: seed or generator; each slot gets an independent stream.
    """

    def __init__(self, model: Module, *, p: float = 0.25,
                 num_masks: int = 4, scale: float = 2.0,
                 block_size: int = 3, rng: SeedLike = None) -> None:
        super().__init__()
        self.model = model
        self._slots: List[DropoutSlot] = collect_slots(model)
        if not self._slots:
            raise ValueError("model exposes no DropoutSlot layers")
        root = new_rng(rng)
        for slot in self._slots:
            slot.build_choice_bank(
                rng=child_rng(root), p=p, num_masks=num_masks,
                scale=scale, block_size=block_size)
        self.space = SearchSpace.from_model(model)
        self._active_config: Optional[DropoutConfig] = None

    # ------------------------------------------------------------------
    # Path selection
    # ------------------------------------------------------------------
    @property
    def slots(self) -> List[DropoutSlot]:
        """The specified dropout slots, in network order."""
        return list(self._slots)

    @property
    def active_config(self) -> Optional[DropoutConfig]:
        """The currently selected configuration, if any."""
        return self._active_config

    def set_config(self, config: DropoutConfig) -> None:
        """Activate the sub-network given by ``config``."""
        config = self.space.validate(tuple(config))
        for slot, code in zip(self._slots, config):
            slot.select(code)
        self._active_config = config

    def sample_config(self, rng: SeedLike = None) -> DropoutConfig:
        """Uniformly sample and activate a path (SPOS training step)."""
        config = self.space.sample(rng)
        self.set_config(config)
        return config

    def active_dropout_layers(self) -> List["DropoutLayer"]:
        """The selected dropout layer of each slot, in network order.

        These are exactly the stochastic layers a Monte-Carlo engine
        will plan masks for under the current configuration; the MC
        determinism tests use this to inspect mask rotation state.

        Raises:
            RuntimeError: if no configuration is active.
        """
        if self._active_config is None:
            raise RuntimeError(
                "no active configuration; call set_config() or "
                "sample_config() first")
        return [slot.active for slot in self._slots]

    # ------------------------------------------------------------------
    # Stochastic state (epoch-granular training checkpoints)
    # ------------------------------------------------------------------
    def stochastic_state(self) -> List[dict]:
        """JSON-able random-stream state of every bank design.

        SPOS training advances the mask streams of whichever designs
        the sampled paths activate, so resuming a checkpointed run
        bit-exactly requires restoring the stream of *every* design in
        every slot's choice bank — not just the weights.  One entry per
        slot, in network order; inverted by :meth:`load_stochastic_state`.
        """
        state = []
        for slot in self._slots:
            state.append({
                "name": slot.name,
                "designs": {code: slot.bank[code].stochastic_state()
                            for code in sorted(slot.bank)},
            })
        return state

    def load_stochastic_state(self, state: List[dict]) -> None:
        """Restore a :meth:`stochastic_state` snapshot in place."""
        if len(state) != len(self._slots):
            raise ValueError(
                f"stochastic state has {len(state)} slot entries, "
                f"expected {len(self._slots)}")
        for slot, entry in zip(self._slots, state):
            if entry.get("name") != slot.name:
                raise ValueError(
                    f"stochastic state entry {entry.get('name')!r} does "
                    f"not match slot {slot.name!r}")
            designs = entry["designs"]
            if sorted(designs) != sorted(slot.bank):
                raise ValueError(
                    f"stochastic state designs {sorted(designs)} do not "
                    f"match slot {slot.name!r} bank {sorted(slot.bank)}")
            for code, design_state in designs.items():
                slot.bank[code].load_stochastic_state(design_state)

    # ------------------------------------------------------------------
    # Module interface — delegate to the backbone
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._active_config is None:
            raise RuntimeError(
                "no active configuration; call set_config() or "
                "sample_config() before forward")
        return self.model(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.model.backward(grad_out)
