"""Steady-state asynchronous multi-fidelity evolutionary search.

The lock-step loop (:mod:`repro.search.evolution`) evaluates one
generation, waits for its slowest shard, then breeds the next — a
barrier that wastes exactly the parallelism the fork pool provides.
This module removes the barrier: persistent forked workers pull
candidate tasks from the parent as they free up, and the parent folds
results back into the evolutionary state as they complete.  The
content-addressed :class:`~repro.api.artifacts.EvaluationCache` remains
the cross-run coordination substrate — every result the parent folds is
stored through the same store-and-count path the lock-step loop uses.

**Multi-fidelity successive halving.**  Candidates are optionally
screened through a ladder of cheap fidelities before the full-priced
evaluation: each :class:`FidelityRung` evaluates with fewer Monte-Carlo
passes (low ``T``) and/or a validation-row subset, and only candidates
ranking inside the rung's ``keep_fraction`` at fold time are promoted
to the next rung (ASHA-style: early candidates promote against the
scores seen *so far*, so the pipeline never stalls waiting for a full
cohort).  The last rung is always the caller's own full-fidelity
evaluator.  Fidelity is part of the evaluator purity contract: each
rung owns a private evaluator whose ``cache_context`` appends the
fidelity (``T`` and data fraction), so every evaluation stays a pure
function of ``(weights, config, data, eval_seed, fidelity)`` with
distinct cache keys per fidelity — a low-fidelity score can never be
served for a full-fidelity request.

**Determinism contract.**  Tasks get monotonically increasing ids at
enqueue time, and the parent folds results *strictly in task-id order*
(out-of-order completions buffer until their turn).  Every evolutionary
decision — promotion, population update, the next proposal — happens at
a fold point, so the whole trajectory is a pure function of the seed
and the caches: bit-identical for any worker count, for the inline
fallback, and for cold-vs-warm caches (a warm rerun replays the same
trajectory with the hit/miss split honestly shifted toward hits).

**Worker-death recovery.**  Each worker owns a private pipe; a worker
that dies mid-task (crash, OOM-kill) is detected by pipe EOF or a
liveness poll, respawned by a fresh fork, and its in-flight task is
re-dispatched.  Misses are counted once at enqueue and folds are
guarded by task id, so a death can neither drop nor double-count a
candidate.
"""

from __future__ import annotations

import bisect
import math
import multiprocessing
import os
import signal
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.faults.runtime import SITE_ASYNC_DISPATCH, fire
from repro.search.evaluator import CandidateEvaluator, CandidateResult
from repro.search.evolution import (
    EvolutionConfig,
    GenerationStats,
    SearchResult,
    _cache_counts,
    crossover_configs,
    initial_population,
    mutate_config,
    propose_novel,
)
from repro.search.objective import SearchAim
from repro.search.space import DropoutConfig, SearchSpace
from repro.utils.rng import SeedLike, derive_seed, new_rng
from repro.utils.validation import (
    check_fraction,
    check_known_fields,
    check_positive_int,
)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FidelityRung:
    """One screening fidelity of the successive-halving ladder.

    Attributes:
        mc_samples: Monte-Carlo passes at this rung; ``None`` keeps the
            full-fidelity evaluator's ``T``.
        data_fraction: fraction of the validation/OOD rows evaluated
            (a deterministic, seed-derived row subset) in ``(0, 1]``.
        keep_fraction: fraction of candidates promoted to the next rung
            (rank-based at fold time, ASHA-style) in ``(0, 1]``.
    """

    mc_samples: Optional[int] = None
    data_fraction: float = 1.0
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.mc_samples is not None:
            check_positive_int(self.mc_samples, "mc_samples")
        check_fraction(self.data_fraction, "data_fraction",
                       inclusive_low=False, inclusive_high=True)
        check_fraction(self.keep_fraction, "keep_fraction",
                       inclusive_low=False, inclusive_high=True)


@dataclass
class AsyncEAConfig:
    """Hyper-parameters of the steady-state asynchronous search.

    The genetic operators and the proposal budget
    (``population_size * generations`` candidates) reuse the lock-step
    :class:`~repro.search.evolution.EvolutionConfig`, so the two
    algorithms are compared under identical budgets; ``rungs`` adds the
    successive-halving screening ladder (empty = every candidate is
    evaluated at full fidelity) and ``surrogate_promotion`` lets a GP
    surrogate fitted on full-fidelity scores rescue screened-out
    candidates it predicts to beat the incumbent.
    """

    evolution: EvolutionConfig = field(default_factory=EvolutionConfig)
    rungs: Tuple[FidelityRung, ...] = ()
    surrogate_promotion: bool = False

    def __post_init__(self) -> None:
        self.rungs = tuple(self.rungs)

    @property
    def budget(self) -> int:
        """Total distinct-candidate proposals the run makes."""
        return (self.evolution.population_size
                * self.evolution.generations)


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass
class RungStats:
    """Per-rung accounting of one asynchronous search run.

    ``requests``/``hits``/``misses`` are deltas of the rung evaluator's
    counters over the run — the honest per-fidelity budget, meaningful
    on cache-warmed reruns.  The final entry is always the
    full-fidelity rung (``keep_fraction`` is ``None`` there: nothing is
    promoted past it).
    """

    rung: int
    mc_samples: int
    val_rows: int
    ood_rows: int
    data_fraction: float
    keep_fraction: Optional[float]
    requests: int = 0
    hits: int = 0
    misses: int = 0
    promoted: int = 0
    surrogate_promotions: int = 0

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        return {
            "rung": int(self.rung),
            "mc_samples": int(self.mc_samples),
            "val_rows": int(self.val_rows),
            "ood_rows": int(self.ood_rows),
            "data_fraction": float(self.data_fraction),
            "keep_fraction": (None if self.keep_fraction is None
                              else float(self.keep_fraction)),
            "requests": int(self.requests),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "promoted": int(self.promoted),
            "surrogate_promotions": int(self.surrogate_promotions),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RungStats":
        """Rebuild stats serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "RungStats")
        keep = data.get("keep_fraction")
        return cls(
            rung=int(data["rung"]),
            mc_samples=int(data["mc_samples"]),
            val_rows=int(data["val_rows"]),
            ood_rows=int(data["ood_rows"]),
            data_fraction=float(data["data_fraction"]),
            keep_fraction=None if keep is None else float(keep),
            requests=int(data.get("requests", 0)),
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            promoted=int(data.get("promoted", 0)),
            surrogate_promotions=int(data.get("surrogate_promotions", 0)),
        )


@dataclass
class AsyncSearchResult(SearchResult):
    """A :class:`SearchResult` with per-rung fidelity accounting.

    The inherited counters aggregate over *all* rungs;
    ``rungs[-1].misses`` is the number of full-fidelity evaluations the
    run actually paid — the successive-halving savings headline.  The
    ``history`` records one entry per full-fidelity fold (the
    steady-state analogue of a generation).  Worker telemetry is
    deliberately absent: the serialized result is identical for every
    worker count.
    """

    rungs: List[RungStats] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready view that round-trips via :meth:`from_dict`."""
        payload = super().to_dict()
        payload["rungs"] = [stats.to_dict() for stats in self.rungs]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "AsyncSearchResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        check_known_fields(data, cls, "AsyncSearchResult")
        return cls(
            best=CandidateResult.from_dict(data["best"]),
            best_score=float(data["best_score"]),
            history=[GenerationStats.from_dict(h)
                     for h in data.get("history", [])],
            num_evaluations=int(data.get("num_evaluations", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get(
                "cache_misses", data.get("num_evaluations", 0))),
            rungs=[RungStats.from_dict(r) for r in data.get("rungs", [])],
        )


# ----------------------------------------------------------------------
# Fidelity plumbing
# ----------------------------------------------------------------------
def fidelity_subset(data: Dataset, fraction: float,
                    seed: Optional[int]) -> Dataset:
    """Deterministic row subset of ``data`` for a screening rung.

    The rows are drawn from a permutation seeded by ``(seed, fraction)``
    only — independent of rung position, so two rungs with the same
    fraction share rows (and therefore cache keys) — and returned in
    ascending order.
    """
    if fraction >= 1.0:
        return data
    n = len(data.images)
    keep = max(1, int(round(fraction * n)))
    salt = zlib.crc32(repr(float(fraction)).encode("utf-8"))
    rows = np.random.default_rng(
        derive_seed(seed or 0, 23, salt)).permutation(n)[:keep]
    return data.subset(np.sort(rows))


def rung_evaluator(base: CandidateEvaluator,
                   rung: FidelityRung) -> CandidateEvaluator:
    """A private evaluator scoring candidates at ``rung``'s fidelity.

    Shares the base evaluator's supernet weights, latency oracle, seed
    and disk cache, but evaluates with the rung's ``T`` over the rung's
    deterministic row subset — and scopes its disk-cache entries with a
    fidelity-tagged ``cache_context`` so low- and full-fidelity results
    can never be confused (the purity contract's ``fidelity``
    dimension).
    """
    mc_samples = (base.num_mc_samples if rung.mc_samples is None
                  else int(rung.mc_samples))
    fraction = float(rung.data_fraction)
    context = (f"{base.cache_context}"
               f"|fidelity:T={mc_samples}:frac={fraction!r}")
    return CandidateEvaluator(
        base.supernet,
        fidelity_subset(base.val_data, fraction, base.eval_seed),
        fidelity_subset(base.ood_data, fraction, base.eval_seed),
        latency_fn=base.latency_fn,
        num_mc_samples=mc_samples,
        batch_size=base.batch_size,
        engine=base.engine,
        eval_seed=base.eval_seed,
        disk_cache=base.disk_cache,
        cache_context=context)


# ----------------------------------------------------------------------
# Executors: persistent forked workers, plus the inline fallback
# ----------------------------------------------------------------------
#: Fork-inherited evaluator ladder (index = rung) the workers compute
#: through.  Set by the parent immediately before each fork; workers
#: only ever *read* it.
_WORKER_EVALUATORS: Optional[List[CandidateEvaluator]] = None


@dataclass(frozen=True)
class _TaskFault:
    """Picklable report of a task that raised inside a worker.

    Workers must not crash on an evaluation exception: a fault injected
    deterministically at dispatch would otherwise kill the respawned
    worker identically forever (the fork inherits the parent's injector
    state, so the child cannot advance it).  Instead the fault is
    *reported* and the parent — whose injector has moved on — retries
    the pure computation inline, producing the bit-identical result the
    worker would have.
    """

    message: str


def _worker_loop(conn) -> None:
    """Worker entry: serve ``(task_id, rung, config, inject)`` requests.

    Runs in a forked child; ``_WORKER_EVALUATORS`` is the parent's
    evaluator ladder (private copy-on-write copy).  Workers are
    compute-only — all cache stores and counters stay in the parent —
    and exit on the ``None`` sentinel.  An evaluation that raises
    (including an injected transient error, flagged by ``inject``)
    reports a :class:`_TaskFault` instead of crashing; the parent
    recomputes inline.
    """
    evaluators = _WORKER_EVALUATORS
    if evaluators is None:  # pragma: no cover - defensive
        raise RuntimeError("worker forked without an evaluator ladder")
    while True:
        item = conn.recv()
        if item is None:
            return
        task_id, rung, config, inject = item
        try:
            if inject:
                raise RuntimeError("injected transient evaluation error")
            result = evaluators[rung]._compute(config)
        except Exception as exc:  # repro: allow[broad-except] — reported, parent retries inline
            result = _TaskFault(f"{type(exc).__name__}: {exc}")
        conn.send((task_id, result))


@dataclass
class _ForkWorker:
    """One persistent worker process and its private pipe."""

    process: multiprocessing.process.BaseProcess
    conn: object
    busy: Optional[Tuple[int, int, DropoutConfig]] = None
    #: ``time.monotonic()`` at last dispatch — drives wedge detection.
    dispatched_at: float = 0.0


class _InlineExecutor:
    """Degenerate executor computing tasks in the parent process.

    Used when only one worker is requested or ``fork`` is unavailable;
    tasks complete in submission (= task-id) order, which makes the
    fold loop trivially identical to the pooled path.  The dispatch
    fault site still fires (``error`` events surface as
    :class:`_TaskFault`); ``kill``/``wedge`` events are no-ops — there
    is no worker process to kill.
    """

    deaths = 0
    redispatches = 0
    wedge_recoveries = 0

    def __init__(self, evaluators: Sequence[CandidateEvaluator]) -> None:
        self._evaluators = list(evaluators)
        self._queue: deque = deque()
        self.injected_faults = 0

    def submit(self, task_id: int, rung: int,
               config: DropoutConfig) -> None:
        self._queue.append((task_id, rung, config))

    def next_result(self) -> Tuple[int, CandidateResult]:
        task_id, rung, config = self._queue.popleft()
        event = fire(SITE_ASYNC_DISPATCH)
        if event is not None and event.kind == "error":
            self.injected_faults += 1
            return task_id, _TaskFault("injected transient evaluation error")
        return task_id, self._evaluators[rung]._compute(config)

    def close(self) -> None:
        pass


class _ForkExecutor:
    """Persistent forked workers pulling tasks over private pipes.

    One outstanding task per worker; excess submissions queue in the
    parent and dispatch as workers free up.  Recovery: a worker that
    dies mid-task (pipe EOF, or liveness poll after a receive timeout)
    is respawned by a fresh fork and its task re-dispatched; a worker
    *silent* past ``wedge_timeout_s`` (e.g. SIGSTOPped) is killed and
    recovered the same way.  The parent never counts or stores
    anything here — it only moves tasks.

    Fault injection is parent-side: :data:`SITE_ASYNC_DISPATCH` fires
    once per dispatch, and the *parent* applies the event (SIGKILL /
    SIGSTOP the worker, or flag the task for an injected evaluation
    error) so the injector's visit counters stay in one process.
    """

    #: Receive-poll window; each timeout triggers a liveness sweep.
    POLL_S = 0.2

    def __init__(self, evaluators: Sequence[CandidateEvaluator],
                 num_workers: int, fault_hook=None,
                 wedge_timeout_s: Optional[float] = 30.0) -> None:
        self._evaluators = list(evaluators)
        self._ctx = multiprocessing.get_context("fork")
        self._backlog: deque = deque()
        self._fault_hook = fault_hook
        self._dispatches = 0
        self.deaths = 0
        self.redispatches = 0
        self.injected_faults = 0
        self.wedge_recoveries = 0
        self.wedge_timeout_s = (None if wedge_timeout_s is None
                                else float(wedge_timeout_s))
        self._workers = [self._spawn() for _ in range(int(num_workers))]

    @staticmethod
    def available() -> bool:
        """True when the fork start method exists on this platform."""
        return "fork" in multiprocessing.get_all_start_methods()

    def _spawn(self) -> _ForkWorker:
        global _WORKER_EVALUATORS
        parent_conn, child_conn = self._ctx.Pipe()
        _WORKER_EVALUATORS = self._evaluators
        try:
            process = self._ctx.Process(
                target=_worker_loop, args=(child_conn,), daemon=True)
            process.start()
        finally:
            _WORKER_EVALUATORS = None
        # The parent must drop its copy of the child end so a dead
        # worker surfaces as EOF on the parent end.
        child_conn.close()
        return _ForkWorker(process=process, conn=parent_conn)

    def submit(self, task_id: int, rung: int,
               config: DropoutConfig) -> None:
        self._backlog.append((task_id, rung, config))
        self._dispatch()

    def _dispatch(self) -> None:
        """Hand backlog tasks to idle workers (respawning dead ones)."""
        for worker in self._workers:
            if not self._backlog:
                return
            if worker.busy is not None:
                continue
            if not worker.process.is_alive():
                self._respawn(worker)
            task = self._backlog.popleft()
            event = fire(SITE_ASYNC_DISPATCH)
            inject_error = event is not None and event.kind == "error"
            worker.conn.send(task + (inject_error,))
            worker.busy = task
            worker.dispatched_at = time.monotonic()
            self._dispatches += 1
            if event is not None:
                self._inject(event, worker)
            if self._fault_hook is not None:
                self._fault_hook(self._dispatches, worker)

    def _inject(self, event, worker: _ForkWorker) -> None:
        """Apply one fault event to a freshly dispatched worker.

        ``kill`` SIGKILLs the worker (the liveness sweep recovers and
        re-dispatches its task); ``wedge`` SIGSTOPs it (the wedge
        timeout recovers it); ``error`` was already flagged into the
        dispatched tuple.  Re-dispatch is a *new* visit at this site,
        so a deterministic event never re-fires on the retry.
        """
        self.injected_faults += 1
        if event.kind in ("kill", "wedge"):
            sig = signal.SIGKILL if event.kind == "kill" else signal.SIGSTOP
            try:
                os.kill(worker.process.pid, sig)
            except ProcessLookupError:  # pragma: no cover - already gone
                pass

    def _respawn(self, worker: _ForkWorker) -> None:
        """Replace a dead worker's process and pipe in place."""
        self.deaths += 1
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        fresh = self._spawn()
        worker.process = fresh.process
        worker.conn = fresh.conn
        worker.busy = None

    def _recover(self, worker: _ForkWorker) -> None:
        """Respawn a dead worker, re-queueing its in-flight task."""
        task = worker.busy
        self._respawn(worker)
        if task is not None:
            self.redispatches += 1
            self._backlog.appendleft(task)
        self._dispatch()

    def next_result(self) -> Tuple[int, CandidateResult]:
        """Block until any in-flight task completes; return it."""
        while True:
            busy = [w for w in self._workers if w.busy is not None]
            if not busy:
                if not self._backlog:
                    raise RuntimeError(
                        "next_result() called with no work in flight")
                self._dispatch()
                continue
            ready = mp_connection.wait([w.conn for w in busy],
                                       timeout=self.POLL_S)
            if not ready:
                # Timeout: sweep for workers that died mid-task, and
                # for wedged ones (alive but silent past the timeout —
                # e.g. SIGSTOPped): those are killed then recovered.
                now = time.monotonic()
                for worker in busy:
                    if not worker.process.is_alive():
                        self._recover(worker)
                    elif (self.wedge_timeout_s is not None and
                          now - worker.dispatched_at
                          > self.wedge_timeout_s):
                        self.wedge_recoveries += 1
                        try:
                            os.kill(worker.process.pid, signal.SIGKILL)
                        except ProcessLookupError:  # pragma: no cover
                            pass
                        worker.process.join(timeout=1.0)
                        self._recover(worker)
                continue
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                try:
                    task_id, result = conn.recv()
                except (EOFError, OSError):
                    self._recover(worker)
                    continue
                worker.busy = None
                self._dispatch()
                return task_id, result

    def close(self) -> None:
        """Shut the pool down (sentinel, join, then terminate)."""
        for worker in self._workers:
            if worker.process.is_alive() and worker.busy is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass


# ----------------------------------------------------------------------
# The steady-state search
# ----------------------------------------------------------------------
class AsyncEvolutionarySearch:
    """Steady-state asynchronous EA with successive-halving screening.

    Args:
        evaluator: the *full-fidelity* memoizing evaluator (normally a
            :class:`~repro.search.evaluator.BatchedEvaluator` — its
            caches, counters and disk-cache context are shared with the
            lock-step loop, so full-fidelity results are bit-identical
            and reusable across algorithms).
        aim: scalarized search aim (applied at every fidelity).
        config: steady-state hyper-parameters and the rung ladder.
        rng: seed or generator driving proposals.
        num_workers: worker processes; ``None`` adopts the evaluator's
            ``num_workers`` (1 where absent).  With one worker — or
            without ``fork`` — tasks run inline, bit-identically.
        fault_hook: test-only callable ``(dispatch_index, worker)``
            invoked after each pooled dispatch; used by the
            worker-death recovery suite to kill workers mid-queue.
            (Seeded plans use :mod:`repro.faults` instead.)
        wedge_timeout_s: a pooled worker silent this long after its
            dispatch is presumed wedged — killed and its task
            re-dispatched.  ``None`` disables wedge detection.
    """

    def __init__(self, evaluator: CandidateEvaluator, aim: SearchAim, *,
                 config: Optional[AsyncEAConfig] = None,
                 rng: SeedLike = None,
                 num_workers: Optional[int] = None,
                 fault_hook=None,
                 wedge_timeout_s: Optional[float] = 30.0) -> None:
        self.evaluator = evaluator
        self.aim = aim
        self.config = config or AsyncEAConfig()
        self.rng = new_rng(rng)
        self.space: SearchSpace = evaluator.supernet.space
        if num_workers is None:
            num_workers = int(getattr(evaluator, "num_workers", 1))
        check_positive_int(num_workers, "num_workers")
        if num_workers > 1 and evaluator.eval_seed is None:
            raise ValueError(
                "num_workers > 1 requires eval_seed: without per-"
                "candidate seeding, worker processes could not "
                "reproduce the inline path's mask streams bit-exactly")
        self.num_workers = int(num_workers)
        self._fault_hook = fault_hook
        self.wedge_timeout_s = wedge_timeout_s
        #: Tasks whose worker reported an evaluation fault and whose
        #: result was recomputed inline by the parent.
        self.fault_retries = 0
        #: Evaluator ladder: one private evaluator per screening rung,
        #: then the caller's full-fidelity evaluator.
        self.rung_evaluators: List[CandidateEvaluator] = [
            rung_evaluator(evaluator, rung) for rung in self.config.rungs
        ] + [evaluator]

    # ------------------------------------------------------------------
    # Proposal stream (all decisions happen at fold points)
    # ------------------------------------------------------------------
    def _parents(self) -> List[DropoutConfig]:
        evo = self.config.evolution
        if not self._population:
            return []
        count = max(1, int(round(
            evo.parent_fraction * len(self._population))))
        return [entry[2].config for entry in self._population[:count]]

    def _propose_next(self) -> None:
        """Propose and enqueue one new candidate, budget permitting."""
        if self._proposals >= self.config.budget:
            return
        evo = self.config.evolution
        parents = self._parents()
        pool = {entry[2].config for entry in self._population}
        if parents:
            def produce() -> DropoutConfig:
                if self.rng.random() < evo.mutation_fraction:
                    parent = parents[self.rng.integers(len(parents))]
                    return mutate_config(self.space, self.rng, parent,
                                         evo.mutation_prob)
                return crossover_configs(
                    self.space, self.rng,
                    parents[self.rng.integers(len(parents))],
                    parents[self.rng.integers(len(parents))])
        else:
            # No full-fidelity results yet: explore uniformly.
            def produce() -> DropoutConfig:
                return self.space.sample(self.rng)
        child = propose_novel(self.space, self.rng, produce, pool,
                              self._proposed)
        self._proposed.add(child)
        self._proposals += 1
        self._enqueue(child, 0)

    # ------------------------------------------------------------------
    # Task queue plumbing
    # ------------------------------------------------------------------
    def _enqueue(self, config: DropoutConfig, rung: int) -> None:
        """Assign the next task id to ``(config, rung)`` and admit it.

        Cache lookups happen here, in deterministic enqueue order: a
        memo or disk hit is counted on the rung's evaluator and its
        result buffered for the in-order fold; a miss is counted once
        and the computation dispatched.  A config whose identical miss
        is already in flight at the same rung counts as a hit (exactly
        like a within-batch duplicate in ``evaluate_batch``) and waits
        for the original's fold instead of computing twice.
        """
        evaluator = self.rung_evaluators[rung]
        config = self.space.validate(tuple(config))
        task_id = self._next_task
        self._next_task += 1
        self._tasks[task_id] = (config, rung)
        key = (config, rung)
        cached = evaluator._cache.get(config)
        if cached is None and key not in self._inflight:
            cached = evaluator._load_from_disk(config)
        if cached is not None:
            evaluator.cache_hits += 1
            self._done[task_id] = cached
        elif key in self._inflight:
            evaluator.cache_hits += 1
            self._waiting.setdefault(key, []).append(task_id)
        else:
            evaluator.cache_misses += 1
            self._miss_tasks.add(task_id)
            self._inflight[key] = task_id
            self._executor.submit(task_id, rung, config)

    # ------------------------------------------------------------------
    # Fold logic
    # ------------------------------------------------------------------
    def _promoted_by_rank(self, rung: int, score: float) -> bool:
        """ASHA promotion: rank the score against this rung so far."""
        scores = self._rung_scores[rung]
        bisect.insort(scores, score)
        n = len(scores)
        better = n - bisect.bisect_right(scores, score)
        keep = max(1, math.ceil(self.config.rungs[rung].keep_fraction * n))
        return better < keep

    def _surrogate_rescue(self, config: DropoutConfig) -> bool:
        """GP-predicted rescue of a rank-rejected candidate."""
        if not self.config.surrogate_promotion or self._gp is None:
            return False
        if not self._gp.is_fitted or self._best is None:
            return False
        predicted = float(self._gp.predict(
            np.asarray([self._one_hot(config)]))[0])
        return predicted > self._best[0]

    def _one_hot(self, config: DropoutConfig) -> List[float]:
        bits: List[float] = []
        for slot, gene in zip(self.space.slots, config):
            for choice in slot.choices:
                bits.append(1.0 if choice == gene else 0.0)
        return bits

    def _refit_surrogate(self) -> None:
        """Deterministic refit cadence over the full-fidelity archive."""
        if self._gp is None or len(self._surrogate_y) < 4:
            return
        if len(self._surrogate_y) % 4 != 0:
            return
        self._gp.fit(np.asarray(self._surrogate_x),
                     np.asarray(self._surrogate_y))

    def _observe_full(self, result: CandidateResult,
                      score: float) -> None:
        """Fold one full-fidelity result into the evolutionary state."""
        self._full_folds += 1
        evo = self.config.evolution
        self._population.append((score, self._full_folds, result))
        # Highest score first; fold order breaks ties deterministically.
        self._population.sort(key=lambda entry: (-entry[0], entry[1]))
        del self._population[evo.population_size:]
        if self._best is None or score > self._best[0]:
            self._best = (score, result)
        self._history.append(GenerationStats(
            generation=self._full_folds - 1,
            best_score=self._best[0],
            mean_score=float(np.mean(
                [entry[0] for entry in self._population])),
            best_config=self._best[1].config,
            evaluations_so_far=self._requests_delta(),
        ))
        if self.config.surrogate_promotion:
            self._surrogate_x.append(self._one_hot(result.config))
            self._surrogate_y.append(score)
            self._refit_surrogate()

    def _fold_one(self, task_id: int) -> None:
        """Fold the next in-order task result; may enqueue/propose."""
        result = self._done.pop(task_id)
        config, rung = self._tasks.pop(task_id)
        evaluator = self.rung_evaluators[rung]
        if task_id in self._miss_tasks:
            # The parent owns all cache writes: computed results are
            # committed to the memo and disk caches at fold time, and
            # duplicate tasks that waited on this computation resolve.
            self._miss_tasks.discard(task_id)
            evaluator._store(config, result)
            key = (config, rung)
            self._inflight.pop(key, None)
            for waiting_id in self._waiting.pop(key, ()):
                self._done[waiting_id] = result
        stats = self._stats[rung]
        if rung < len(self.config.rungs):
            score = result.aim_score(self.aim)
            if self._promoted_by_rank(rung, score):
                stats.promoted += 1
                self._enqueue(config, rung + 1)
                return
            if self._surrogate_rescue(config):
                stats.promoted += 1
                stats.surrogate_promotions += 1
                self._enqueue(config, rung + 1)
                return
        else:
            self._observe_full(result, result.aim_score(self.aim))
        # The candidate's chain ended (screened out, or fully
        # evaluated): its steady-state slot proposes a successor.
        self._propose_next()

    def _requests_delta(self) -> int:
        total = 0
        for evaluator, (hits0, misses0) in zip(self.rung_evaluators,
                                               self._start_counts):
            hits, misses = _cache_counts(evaluator)
            total += (hits - hits0) + (misses - misses0)
        return total

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _make_executor(self):
        if self.num_workers > 1 and _ForkExecutor.available():
            return _ForkExecutor(self.rung_evaluators, self.num_workers,
                                 fault_hook=self._fault_hook,
                                 wedge_timeout_s=self.wedge_timeout_s)
        return _InlineExecutor(self.rung_evaluators)

    def run(self) -> AsyncSearchResult:
        """Execute the asynchronous search; returns the best candidate."""
        evo = self.config.evolution
        self._start_counts = [_cache_counts(ev)
                              for ev in self.rung_evaluators]
        self._stats = self._initial_stats()
        self._tasks: Dict[int, Tuple[DropoutConfig, int]] = {}
        self._done: Dict[int, CandidateResult] = {}
        self._miss_tasks: Set[int] = set()
        self._inflight: Dict[Tuple[DropoutConfig, int], int] = {}
        self._waiting: Dict[Tuple[DropoutConfig, int], List[int]] = {}
        self._next_task = 0
        self._next_fold = 0
        self._rung_scores: List[List[float]] = [
            [] for _ in self.config.rungs]
        self._population: List[Tuple[float, int, CandidateResult]] = []
        self._best: Optional[Tuple[float, CandidateResult]] = None
        self._history: List[GenerationStats] = []
        self._full_folds = 0
        self._gp = None
        self._surrogate_x: List[List[float]] = []
        self._surrogate_y: List[float] = []
        if self.config.surrogate_promotion:
            # Imported here to avoid a module-level repro.hw cycle
            # (repro.hw.accelerator imports repro.search).
            from repro.hw.gp import GaussianProcessRegressor
            self._gp = GaussianProcessRegressor(
                kernel="matern52",
                rng=derive_seed(self.evaluator.eval_seed or 0, 29))

        seeds = initial_population(
            self.space, self.rng,
            population_size=evo.population_size,
            seed_uniform=evo.seed_uniform)
        self._proposed = set(seeds)
        self._proposals = len(seeds)

        self._executor = self._make_executor()
        try:
            for config in seeds:
                self._enqueue(config, 0)
            while self._next_fold < self._next_task:
                if self._next_fold in self._done:
                    task_id = self._next_fold
                    self._next_fold += 1
                    self._fold_one(task_id)
                    continue
                task_id, result = self._executor.next_result()
                # Guard against duplicate completions (a task finished
                # by both a presumed-dead worker and its re-dispatch):
                # only the first completion of a live task id lands.
                if task_id >= self._next_fold and task_id not in self._done:
                    if isinstance(result, _TaskFault):
                        # A worker reported (not crashed on) an
                        # evaluation fault; recompute the pure result
                        # inline — bit-identical, trajectory unchanged.
                        config, rung = self._tasks[task_id]
                        result = self.rung_evaluators[rung]._compute(
                            config)
                        self.fault_retries += 1
                    self._done[task_id] = result
        finally:
            self._executor.close()

        assert self._best is not None  # budget >= population_size >= 1
        hits_delta = 0
        misses_delta = 0
        for stats, evaluator, (hits0, misses0) in zip(
                self._stats, self.rung_evaluators, self._start_counts):
            hits, misses = _cache_counts(evaluator)
            stats.hits = hits - hits0
            stats.misses = misses - misses0
            stats.requests = stats.hits + stats.misses
            hits_delta += stats.hits
            misses_delta += stats.misses
        return AsyncSearchResult(
            best=self._best[1],
            best_score=self._best[0],
            history=self._history,
            num_evaluations=misses_delta,
            cache_hits=hits_delta,
            cache_misses=misses_delta,
            rungs=self._stats,
        )

    def _initial_stats(self) -> List[RungStats]:
        stats = []
        for index, (rung, evaluator) in enumerate(
                zip(self.config.rungs, self.rung_evaluators)):
            stats.append(RungStats(
                rung=index,
                mc_samples=evaluator.num_mc_samples,
                val_rows=len(evaluator.val_data.images),
                ood_rows=len(evaluator.ood_data.images),
                data_fraction=float(rung.data_fraction),
                keep_fraction=float(rung.keep_fraction),
            ))
        stats.append(RungStats(
            rung=len(self.config.rungs),
            mc_samples=self.evaluator.num_mc_samples,
            val_rows=len(self.evaluator.val_data.images),
            ood_rows=len(self.evaluator.ood_data.images),
            data_fraction=1.0,
            keep_fraction=None,
        ))
        return stats


__all__ = [
    "AsyncEAConfig",
    "AsyncEvolutionarySearch",
    "AsyncSearchResult",
    "FidelityRung",
    "RungStats",
    "fidelity_subset",
    "rung_evaluator",
]
