"""Constraint-aware search aims.

The framework "receives ... specifications and search objectives"
(paper Sec. 3.1) and is meant to respect deployment *constraints* such
as a latency budget.  Scalarized aims (Eq. 2) express soft preferences;
this module adds hard constraints by composing an aim with feasibility
penalties, so the evolutionary algorithm works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bayes.evaluate import AlgorithmicReport
from repro.search.objective import SearchAim

#: Penalty slope applied per unit of constraint violation.  Large
#: enough that any feasible candidate beats any infeasible one on the
#: metric scales used here (accuracy/ECE in [0,1], aPE in nats).
PENALTY_SLOPE = 1e3


@dataclass(frozen=True)
class ConstrainedAim:
    """A :class:`SearchAim` subject to hard resource constraints.

    Attributes:
        base: the underlying scalarized aim.
        max_latency_ms: latency budget; candidates above it are
            penalized proportionally to the violation.
        min_accuracy: optional accuracy floor.
        max_ece: optional calibration ceiling.

    The object is a drop-in replacement for :class:`SearchAim`: it
    exposes ``score``/``name`` with the same signature, so
    :class:`~repro.search.evolution.EvolutionarySearch` accepts it
    directly.
    """

    base: SearchAim
    max_latency_ms: Optional[float] = None
    min_accuracy: Optional[float] = None
    max_ece: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.max_latency_ms is None and self.min_accuracy is None
                and self.max_ece is None):
            raise ValueError("constrained aim needs at least one bound")
        if self.max_latency_ms is not None and self.max_latency_ms <= 0:
            raise ValueError(
                f"max_latency_ms must be positive, got "
                f"{self.max_latency_ms}")

    @property
    def name(self) -> str:
        """Display name including the active bounds."""
        bounds = []
        if self.max_latency_ms is not None:
            bounds.append(f"lat<={self.max_latency_ms}ms")
        if self.min_accuracy is not None:
            bounds.append(f"acc>={self.min_accuracy}")
        if self.max_ece is not None:
            bounds.append(f"ece<={self.max_ece}")
        return f"{self.base.name} s.t. {', '.join(bounds)}"

    def violation(self, report: AlgorithmicReport,
                  latency_ms: float) -> float:
        """Total constraint violation (0.0 when feasible)."""
        violation = 0.0
        if self.max_latency_ms is not None:
            violation += max(0.0, float(latency_ms) - self.max_latency_ms)
        if self.min_accuracy is not None:
            violation += max(0.0, self.min_accuracy - report.accuracy)
        if self.max_ece is not None:
            violation += max(0.0, report.ece - self.max_ece)
        return violation

    def is_feasible(self, report: AlgorithmicReport,
                    latency_ms: float) -> bool:
        """True when every bound is satisfied."""
        return self.violation(report, latency_ms) == 0.0

    def score(self, report: AlgorithmicReport,
              latency_ms: float) -> float:
        """Base aim score minus a steep penalty per unit violation."""
        return (self.base.score(report, latency_ms)
                - PENALTY_SLOPE * self.violation(report, latency_ms))


def with_latency_budget(base: SearchAim,
                        max_latency_ms: float) -> ConstrainedAim:
    """Convenience: constrain ``base`` to a latency budget."""
    return ConstrainedAim(base=base, max_latency_ms=max_latency_ms)
