"""Neural dropout search: SPOS supernet + evolutionary optimization.

This package is the paper's core contribution: the layer-wise dropout
search space (Sec. 3.2), one-shot supernet training (Sec. 3.3), the
evolutionary algorithm with the scalarized aim of Eq. (2) (Sec. 3.4),
and Pareto / exhaustive analysis tooling (Sec. 4.1, Fig. 4).
"""

from repro.search.async_ea import (
    AsyncEAConfig,
    AsyncEvolutionarySearch,
    AsyncSearchResult,
    FidelityRung,
    RungStats,
)
from repro.search.constraints import ConstrainedAim, with_latency_budget
from repro.search.evaluator import (
    BatchedEvaluator,
    CandidateEvaluator,
    CandidateResult,
)
from repro.search.evolution import (
    EvolutionConfig,
    EvolutionarySearch,
    GenerationStats,
    SearchResult,
    crossover_configs,
    initial_population,
    mutate_config,
    propose_novel,
    random_search,
)
from repro.search.exhaustive import (
    METRIC_DIRECTIONS,
    best_by_aim,
    evaluate_all,
    metric_matrix,
    pareto_results,
)
from repro.search.multiobjective import (
    MultiObjectiveResult,
    MultiObjectiveSearch,
)
from repro.search.parallel import ParallelEvaluator
from repro.search.objective import (
    ACCURACY_OPTIMAL,
    AIM_PRESETS,
    APE_OPTIMAL,
    BALANCED,
    ECE_OPTIMAL,
    LATENCY_OPTIMAL,
    SearchAim,
    get_aim,
)
from repro.search.pareto import (
    MAXIMIZE,
    MINIMIZE,
    dominates,
    is_on_front,
    pareto_front,
    pareto_mask,
)
from repro.search.space import (
    DropoutConfig,
    SearchSpace,
    SlotSpec,
    config_from_string,
    config_to_string,
)
from repro.search.supernet import Supernet
from repro.search.trainer import (
    TRAIN_MODES,
    MemoryCheckpointer,
    TrainCheckpoint,
    TrainConfig,
    TrainLog,
    train_standalone,
    train_supernet,
)

__all__ = [
    "ACCURACY_OPTIMAL",
    "AIM_PRESETS",
    "APE_OPTIMAL",
    "BALANCED",
    "ECE_OPTIMAL",
    "LATENCY_OPTIMAL",
    "MAXIMIZE",
    "METRIC_DIRECTIONS",
    "MINIMIZE",
    "TRAIN_MODES",
    "AsyncEAConfig",
    "AsyncEvolutionarySearch",
    "AsyncSearchResult",
    "BatchedEvaluator",
    "FidelityRung",
    "RungStats",
    "MemoryCheckpointer",
    "MultiObjectiveResult",
    "MultiObjectiveSearch",
    "ParallelEvaluator",
    "CandidateEvaluator",
    "CandidateResult",
    "ConstrainedAim",
    "DropoutConfig",
    "EvolutionConfig",
    "EvolutionarySearch",
    "GenerationStats",
    "SearchAim",
    "SearchResult",
    "SearchSpace",
    "SlotSpec",
    "Supernet",
    "TrainCheckpoint",
    "TrainConfig",
    "TrainLog",
    "best_by_aim",
    "config_from_string",
    "config_to_string",
    "crossover_configs",
    "dominates",
    "evaluate_all",
    "get_aim",
    "initial_population",
    "is_on_front",
    "metric_matrix",
    "mutate_config",
    "pareto_front",
    "pareto_mask",
    "pareto_results",
    "propose_novel",
    "random_search",
    "train_standalone",
    "train_supernet",
    "with_latency_budget",
]
