"""Wall-clock timing utilities used by the search-cost accounting."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager stopwatch.

    Example::

        with Timer() as t:
            run_search()
        print(t.elapsed)  # seconds
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the accumulated elapsed seconds."""
        if self._start is not None:
            self._elapsed += time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running, frozen once stopped)."""
        if self._start is not None:
            return self._elapsed + (time.perf_counter() - self._start)
        return self._elapsed
