"""Small argument-validation helpers shared across the library.

These raise early with precise messages instead of letting numpy produce
an opaque broadcasting error three stack frames later.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping

import numpy as np


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = False) -> float:
    """Validate that ``value`` lies in the unit interval and return it.

    Bounds default to the dropout-rate convention ``0.0 <= p < 1.0``.
    """
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok):
        lo = "[0" if inclusive_low else "(0"
        hi = "1]" if inclusive_high else "1)"
        raise ValueError(f"{name} must be in {lo}, {hi}, got {value}")
    return value


def check_shape_4d(x: np.ndarray, name: str) -> np.ndarray:
    """Validate a batched image tensor of shape ``(N, C, H, W)``."""
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(
            f"{name} must have shape (N, C, H, W); got ndim={x.ndim}, "
            f"shape={x.shape}"
        )
    return x


def check_known_fields(data: Mapping, cls, where: str) -> None:
    """Validate that ``data`` names only fields of dataclass ``cls``.

    The allowed set is derived from ``dataclasses.fields`` so
    serialization round-trips (``from_dict``) never drift from the
    dataclass definition.
    """
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {where} field(s): {sorted(unknown)}; "
                         f"allowed: {sorted(allowed)}")


def check_same_length(a, b, name_a: str, name_b: str) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length; "
            f"got {len(a)} and {len(b)}"
        )
