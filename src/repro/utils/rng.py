"""Seeded random-number-generator helpers.

Every stochastic component in this library (dropout masks, dataset
synthesis, supernet path sampling, evolutionary operators, LFSR seeds)
receives an explicit :class:`numpy.random.Generator`.  Nothing reads the
global numpy RNG, which keeps experiments reproducible and lets tests
pin randomness precisely.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned as-is),
    or ``None`` for OS entropy.  This is the single entry point through
    which the library materializes randomness.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator from ``rng``."""
    return np.random.default_rng(rng.integers(0, 2**63 - 1))


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used when a component needs per-layer or per-worker streams that must
    not interact (e.g. one stream per dropout layer in a supernet).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = new_rng(seed)
    return [child_rng(root) for _ in range(count)]


def derive_seed(seed: Optional[int], *salt: int) -> int:
    """Mix ``salt`` integers into ``seed`` to produce a derived seed.

    A cheap, deterministic way to give sub-components distinct seeds
    (e.g. epoch number, layer index) without carrying generators around.
    """
    mask = 0xFFFFFFFFFFFFFFFF
    h = (0x9E3779B97F4A7C15 if seed is None else int(seed)) & mask
    for s in salt:
        h ^= int(s) & mask
        h = (h * 0xBF58476D1CE4E5B9) & mask
        h ^= h >> 31
    return h % (2**63 - 1)
