"""Shared utilities: seeded randomness, validation helpers, and timers."""

from repro.utils.rng import child_rng, new_rng, spawn_rngs
from repro.utils.timers import Timer
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_shape_4d,
)

__all__ = [
    "Timer",
    "check_fraction",
    "check_positive_int",
    "check_shape_4d",
    "child_rng",
    "new_rng",
    "spawn_rngs",
]
