"""Procedural stand-ins for MNIST, SVHN and CIFAR-10.

The offline environment cannot download the paper's datasets, so this
module synthesizes *learnable* image-classification tasks with the same
interface (DESIGN.md, substitution table):

* :func:`make_mnist_like` — grayscale digit rendering with jitter and
  noise (10 classes, default 28x28x1);
* :func:`make_svhn_like` — colored digits over textured backgrounds
  (10 classes, default 32x32x3);
* :func:`make_cifar_like` — class-conditional structured textures
  (10 classes, default 32x32x3).

The tasks are non-trivial (position/scale/color jitter, distractors,
additive noise) so accuracy, calibration and uncertainty genuinely
respond to model and dropout choices, which is all the paper's search
experiments require.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.fonts import digit_glyph, upsample_glyph
from repro.nn.module import DTYPE
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive_int


def _blur3(img: np.ndarray) -> np.ndarray:
    """Cheap 3x3 box blur used to soften glyph edges."""
    out = img.copy()
    out[1:-1, 1:-1] = (
        img[:-2, :-2] + img[:-2, 1:-1] + img[:-2, 2:]
        + img[1:-1, :-2] + img[1:-1, 1:-1] + img[1:-1, 2:]
        + img[2:, :-2] + img[2:, 1:-1] + img[2:, 2:]
    ) / 9.0
    return out


def _render_digit(digit: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one jittered digit glyph into a ``size x size`` canvas.

    The glyph fills most of the canvas and is jittered by a bounded
    offset around the centre (roughly +/- size/8), mimicking the loose
    centring of MNIST digits while keeping the task learnable from a
    few hundred examples.
    """
    canvas = np.zeros((size, size), dtype=np.float32)
    factor = max(1, int(round(size * 0.8 / 7)))
    glyph = upsample_glyph(digit_glyph(digit), factor)
    gh, gw = glyph.shape
    gh_fit, gw_fit = min(gh, size), min(gw, size)
    cy = (size - gh_fit) // 2
    cx = (size - gw_fit) // 2
    jitter = max(1, size // 8)
    dy = int(np.clip(cy + rng.integers(-jitter, jitter + 1), 0, size - gh_fit))
    dx = int(np.clip(cx + rng.integers(-jitter, jitter + 1), 0, size - gw_fit))
    intensity = rng.uniform(0.7, 1.0)
    canvas[dy:dy + gh_fit, dx:dx + gw_fit] = glyph[:gh_fit, :gw_fit] * intensity
    if rng.random() < 0.5:
        canvas = _blur3(canvas)
    return canvas


def make_mnist_like(num_samples: int = 512, *, image_size: int = 28,
                    noise_std: float = 0.15,
                    rng: SeedLike = None) -> Dataset:
    """Grayscale digit dataset in the role of MNIST.

    Args:
        num_samples: total images (balanced across the 10 digits).
        image_size: square side length.
        noise_std: additive Gaussian pixel-noise level.
        rng: seed or generator.
    """
    check_positive_int(num_samples, "num_samples")
    check_positive_int(image_size, "image_size")
    rng = new_rng(rng)
    images = np.zeros((num_samples, 1, image_size, image_size), dtype=DTYPE)
    labels = rng.integers(0, 10, size=num_samples)
    for i, lab in enumerate(labels):
        img = _render_digit(int(lab), image_size, rng)
        img = img + rng.normal(0.0, noise_std, size=img.shape)
        images[i, 0] = np.clip(img, 0.0, 1.0)
    return Dataset(images, labels, name="mnist_like", num_classes=10)


def _texture_background(size: int, rng: np.random.Generator) -> np.ndarray:
    """Random smooth color background of shape ``(3, size, size)``."""
    base = rng.uniform(0.1, 0.6, size=3).astype(np.float32)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32) / max(size - 1, 1)
    grad_dir = rng.uniform(-1.0, 1.0, size=(3, 2)).astype(np.float32) * 0.3
    bg = (base[:, None, None]
          + grad_dir[:, 0, None, None] * yy[None]
          + grad_dir[:, 1, None, None] * xx[None])
    bg += rng.normal(0.0, 0.03, size=bg.shape)
    return np.clip(bg, 0.0, 1.0).astype(np.float32)


def make_svhn_like(num_samples: int = 512, *, image_size: int = 32,
                   noise_std: float = 0.08,
                   rng: SeedLike = None) -> Dataset:
    """Colored digits over textured backgrounds, in the role of SVHN."""
    check_positive_int(num_samples, "num_samples")
    check_positive_int(image_size, "image_size")
    rng = new_rng(rng)
    images = np.zeros((num_samples, 3, image_size, image_size), dtype=DTYPE)
    labels = rng.integers(0, 10, size=num_samples)
    for i, lab in enumerate(labels):
        bg = _texture_background(image_size, rng)
        digit = _render_digit(int(lab), image_size, rng)
        color = rng.uniform(0.5, 1.0, size=3).astype(np.float32)
        img = bg * (1.0 - digit[None]) + color[:, None, None] * digit[None]
        img += rng.normal(0.0, noise_std, size=img.shape)
        images[i] = np.clip(img, 0.0, 1.0)
    return Dataset(images, labels, name="svhn_like", num_classes=10)


def _texture_class(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one sample of the CIFAR-like texture class ``label``.

    Each class is a distinct parametric pattern family (stripes at a
    class-specific orientation/frequency, rings, checkers, blobs), so a
    convolutional net can learn them while per-sample phase/color jitter
    keeps the task from being trivial.
    """
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float32) / max(size - 1, 1)
    phase = rng.uniform(0, 2 * np.pi)
    freq = 3.0 + (label % 5) * 1.5
    if label < 5:
        # Oriented sinusoidal stripes; orientation encodes the class.
        theta = label * np.pi / 5.0 + rng.normal(0.0, 0.06)
        field = np.sin(
            2 * np.pi * freq * (np.cos(theta) * xx + np.sin(theta) * yy)
            + phase)
    elif label < 7:
        # Concentric rings with class-dependent frequency.
        cy, cx = rng.uniform(0.3, 0.7, size=2)
        r = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
        field = np.sin(2 * np.pi * freq * r + phase)
    elif label < 9:
        # Checkerboards at class-dependent scale.
        cells = 3 + 2 * (label - 7) + int(rng.integers(0, 2))
        field = np.sign(np.sin(np.pi * cells * xx + phase)
                        * np.sin(np.pi * cells * yy + phase))
    else:
        # Smooth blobs: mixture of Gaussians.
        field = np.zeros_like(xx)
        for _ in range(3):
            cy, cx = rng.uniform(0.0, 1.0, size=2)
            s2 = rng.uniform(0.01, 0.05)
            field += np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * s2))
        field = field / field.max() * 2.0 - 1.0
    tint = rng.uniform(0.3, 1.0, size=3).astype(np.float32)
    base = rng.uniform(0.0, 0.3, size=3).astype(np.float32)
    img = base[:, None, None] + tint[:, None, None] * (field[None] * 0.5 + 0.5)
    return np.clip(img, 0.0, 1.0).astype(np.float32)


def make_cifar_like(num_samples: int = 512, *, image_size: int = 32,
                    noise_std: float = 0.08,
                    rng: SeedLike = None) -> Dataset:
    """Class-conditional structured textures, in the role of CIFAR-10."""
    check_positive_int(num_samples, "num_samples")
    check_positive_int(image_size, "image_size")
    rng = new_rng(rng)
    images = np.zeros((num_samples, 3, image_size, image_size), dtype=DTYPE)
    labels = rng.integers(0, 10, size=num_samples)
    for i, lab in enumerate(labels):
        img = _texture_class(int(lab), image_size, rng)
        img += rng.normal(0.0, noise_std, size=img.shape)
        images[i] = np.clip(img, 0.0, 1.0)
    return Dataset(images, labels, name="cifar_like", num_classes=10)


#: Dataset factories keyed by the names used in the paper's experiments.
DATASET_FACTORIES = {
    "mnist_like": make_mnist_like,
    "svhn_like": make_svhn_like,
    "cifar_like": make_cifar_like,
}


def make_dataset(name: str, num_samples: int = 512, *, image_size: int = None,
                 rng: SeedLike = None) -> Dataset:
    """Build a synthetic dataset by name.

    Args:
        name: ``'mnist_like'``, ``'svhn_like'`` or ``'cifar_like'``.
        num_samples: total images.
        image_size: side length; defaults per dataset (28 / 32 / 32).
        rng: seed or generator.
    """
    key = name.lower()
    if key not in DATASET_FACTORIES:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(DATASET_FACTORIES)}")
    kwargs = {"rng": rng}
    if image_size is not None:
        kwargs["image_size"] = image_size
    return DATASET_FACTORIES[key](num_samples, **kwargs)
