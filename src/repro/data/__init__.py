"""Synthetic datasets, loaders, splits and OOD generation."""

from repro.data.dataset import DataLoader, DataSplits, Dataset, split_dataset
from repro.data.fonts import GLYPH_SHAPE, digit_glyph, upsample_glyph
from repro.data.ood import gaussian_noise_like
from repro.data.synthetic import (
    DATASET_FACTORIES,
    make_cifar_like,
    make_dataset,
    make_mnist_like,
    make_svhn_like,
)

__all__ = [
    "DATASET_FACTORIES",
    "DataLoader",
    "DataSplits",
    "Dataset",
    "GLYPH_SHAPE",
    "digit_glyph",
    "gaussian_noise_like",
    "make_cifar_like",
    "make_dataset",
    "make_mnist_like",
    "make_svhn_like",
    "split_dataset",
    "upsample_glyph",
]
