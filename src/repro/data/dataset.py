"""Dataset containers, splits and batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.nn.module import DTYPE
from repro.utils.rng import SeedLike, new_rng
from repro.utils.validation import check_positive_int, check_same_length


@dataclass
class Dataset:
    """An in-memory labelled image dataset.

    Attributes:
        images: float array of shape ``(N, C, H, W)``.
        labels: int array of shape ``(N,)``.
        name: human-readable dataset name.
        num_classes: number of distinct classes.
    """

    images: np.ndarray
    labels: np.ndarray
    name: str
    num_classes: int

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=DTYPE)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(
                f"images must be (N, C, H, W), got {self.images.shape}")
        check_same_length(self.images, self.labels, "images", "labels")
        check_positive_int(self.num_classes, "num_classes")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """Per-image shape ``(C, H, W)``."""
        return self.images.shape[1:]

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(self.images[indices], self.labels[indices],
                       name=self.name, num_classes=self.num_classes)

    def channel_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel (mean, std) over the whole dataset."""
        mean = self.images.mean(axis=(0, 2, 3))
        std = self.images.std(axis=(0, 2, 3))
        return mean, np.maximum(std, 1e-6)

    def normalized(self) -> "Dataset":
        """Return a per-channel standardized copy."""
        mean, std = self.channel_stats()
        images = (self.images - mean[None, :, None, None]) / std[None, :, None, None]
        return Dataset(images, self.labels, name=self.name,
                       num_classes=self.num_classes)


@dataclass
class DataSplits:
    """Train/validation/test partition of one dataset."""

    train: Dataset
    val: Dataset
    test: Dataset


def split_dataset(dataset: Dataset, *, val_fraction: float = 0.15,
                  test_fraction: float = 0.15,
                  rng: SeedLike = None) -> DataSplits:
    """Shuffle and partition a dataset into train/val/test splits."""
    if val_fraction < 0 or test_fraction < 0 or val_fraction + test_fraction >= 1:
        raise ValueError(
            f"invalid split fractions val={val_fraction}, test={test_fraction}")
    rng = new_rng(rng)
    n = len(dataset)
    order = rng.permutation(n)
    n_val = int(round(n * val_fraction))
    n_test = int(round(n * test_fraction))
    val_idx = order[:n_val]
    test_idx = order[n_val:n_val + n_test]
    train_idx = order[n_val + n_test:]
    return DataSplits(
        train=dataset.subset(train_idx),
        val=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
    )


class DataLoader:
    """Mini-batch iterator with optional per-epoch shuffling.

    Example::

        for images, labels in DataLoader(ds, batch_size=32, rng=0):
            ...
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32, *,
                 shuffle: bool = True, drop_last: bool = False,
                 rng: SeedLike = None) -> None:
        self.dataset = dataset
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.rng = new_rng(rng)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                return
            yield self.dataset.images[idx], self.dataset.labels[idx]
