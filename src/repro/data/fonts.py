"""Bitmap digit glyphs used by the procedural MNIST/SVHN-like renderers.

A compact 5x7 pixel font for the digits 0-9.  Glyphs are upsampled,
jittered and noised by :mod:`repro.data.synthetic` to produce learnable
classification tasks without any external dataset download.
"""

from __future__ import annotations

import numpy as np

_GLYPH_ROWS = {
    0: ("01110", "10001", "10011", "10101", "11001", "10001", "01110"),
    1: ("00100", "01100", "00100", "00100", "00100", "00100", "01110"),
    2: ("01110", "10001", "00001", "00110", "01000", "10000", "11111"),
    3: ("01110", "10001", "00001", "00110", "00001", "10001", "01110"),
    4: ("00010", "00110", "01010", "10010", "11111", "00010", "00010"),
    5: ("11111", "10000", "11110", "00001", "00001", "10001", "01110"),
    6: ("00110", "01000", "10000", "11110", "10001", "10001", "01110"),
    7: ("11111", "00001", "00010", "00100", "01000", "01000", "01000"),
    8: ("01110", "10001", "10001", "01110", "10001", "10001", "01110"),
    9: ("01110", "10001", "10001", "01111", "00001", "00010", "01100"),
}

#: Glyph height and width in font pixels.
GLYPH_SHAPE = (7, 5)


def digit_glyph(digit: int) -> np.ndarray:
    """Return the 7x5 binary bitmap for ``digit`` in ``0..9``."""
    if digit not in _GLYPH_ROWS:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    rows = _GLYPH_ROWS[digit]
    return np.array([[int(c) for c in row] for row in rows], dtype=np.float32)


def upsample_glyph(glyph: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsample of a glyph by an integer ``factor``."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    return np.repeat(np.repeat(glyph, factor, axis=0), factor, axis=1)
