"""Static overflow certificates for compiled fixed-point kernels.

:func:`certify_kernel` abstract-interprets a
:class:`~repro.hw.compile.kernel.CompiledKernel`'s layer plans and
proves — for **any representable input**, not just the calibration
split — that every widened ``int64`` accumulator stays inside the
machine word.  Each integer op starts by saturating its input into its
own activation format (``fmt_in.to_fixed``), so the per-layer analysis
starts from the full code range of that format and propagates exact
worst-case intervals through the op's arithmetic:

* conv / linear: the im2col GEMM's reduction uses the *actual* weight
  codes — per output row, sign-aware sums bound the final accumulator
  and ``sum |w| * max|x|`` bounds every partial sum in every reduction
  order (plus the bias add at the accumulator's fraction);
* batch-norm: the folded per-channel ``scale * x + shift`` affine;
* LeakyReLU: the ``x * slope`` negative branch at accumulator scale;
* pooling: ``k**2``-term sums (average) or an order-free max;
* dropout: the per-pass quantized mask product at the mask format's
  extremes (sound even for signed Gaussian-noise masks);
* ``requantize``'s rescale, including the exact left-shift of a
  negative shift — the one place a layer-safe accumulator could still
  wrap.

The result is an :class:`OverflowCertificate`: per-layer bound versus
int64 headroom, a ``saturation-only`` / ``wrap-possible`` verdict, and
the tightest safe accumulator width for the HLS emitter's ``accum_t``
typedefs.  ``repro compile`` persists one next to every kernel;
``repro verify-kernel`` re-derives it and cross-checks the stored copy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.intervals import (
    INT64_MAX,
    Interval,
    affine_bounds,
    format_interval,
    required_bits,
    shifted_magnitude,
)
from repro.hw.fixed_point import FixedPointFormat
from repro.hw.netlist import (
    KIND_ACT,
    KIND_BN,
    KIND_CONV,
    KIND_DROPOUT,
    KIND_FLATTEN,
    KIND_GPOOL,
    KIND_IDENTITY,
    KIND_LINEAR,
    KIND_POOL,
)

#: Version stamped into every persisted certificate.
CERTIFICATE_VERSION = 1

#: JSON artifact name of the persisted certificate.
CERTIFICATE_ARTIFACT = "overflow_certificate"

#: Verdict of a kernel whose accumulators provably fit int64: the only
#: information loss anywhere is the *intended* output-format saturation.
VERDICT_SATURATION_ONLY = "saturation-only"

#: Verdict of a kernel with at least one accumulator that can wrap.
VERDICT_WRAP_POSSIBLE = "wrap-possible"


class CertificationError(ValueError):
    """The certifier cannot analyze a kernel (unknown op, bad record)."""


@dataclass
class LayerCertificate:
    """Worst-case accumulator bounds of one compiled layer.

    Attributes:
        name / kind: traced layer identity.
        accum_lo / accum_hi: exact interval of the completed
            accumulation (``None`` for layers with no integer
            arithmetic — flatten/identity pass the float carrier).
        magnitude_bound: bound on ``|acc|`` valid for every partial sum
            in every reduction order.
        post_shift_bound: bound after ``requantize``'s rescale (the
            left-shift hazard); equals ``magnitude_bound`` when the
            layer does not requantize.
        accum_fraction: fraction bits the accumulator carries.
        required_accum_bits: tightest two's-complement width that holds
            the bound — the safe ``accum_t`` width for the HLS emitter.
        headroom_bits: ``63 - magnitude_bound.bit_length()`` (negative
            means the accumulator can wrap int64).
        wrap_possible: whether any intermediate can exceed int64.
    """

    name: str
    kind: str
    accum_lo: Optional[int] = None
    accum_hi: Optional[int] = None
    magnitude_bound: Optional[int] = None
    post_shift_bound: Optional[int] = None
    accum_fraction: Optional[int] = None
    required_accum_bits: Optional[int] = None
    headroom_bits: Optional[int] = None
    wrap_possible: bool = False

    @property
    def arithmetic(self) -> bool:
        """Whether the layer performs integer arithmetic at all."""
        return self.magnitude_bound is not None

    def safe_accum_format(self) -> Optional[FixedPointFormat]:
        """Tightest safe accumulator format (``accum_t``) or ``None``."""
        if not self.arithmetic or self.wrap_possible:
            return None
        fraction = self.accum_fraction or 0
        bits = max(self.required_accum_bits or 1, fraction + 1)
        return FixedPointFormat(total_bits=bits, fraction_bits=fraction)

    def to_dict(self) -> dict:
        """JSON view.  Bounds serialize as decimal strings: they can
        exceed 2**53 and JSON numbers stop round-tripping there."""
        def enc(value):
            return None if value is None else str(value)
        return {
            "name": self.name,
            "kind": self.kind,
            "accum_lo": enc(self.accum_lo),
            "accum_hi": enc(self.accum_hi),
            "magnitude_bound": enc(self.magnitude_bound),
            "post_shift_bound": enc(self.post_shift_bound),
            "accum_fraction": self.accum_fraction,
            "required_accum_bits": self.required_accum_bits,
            "headroom_bits": self.headroom_bits,
            "wrap_possible": self.wrap_possible,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LayerCertificate":
        """Rebuild from a :meth:`to_dict` payload."""
        def dec(value):
            return None if value is None else int(value)
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            accum_lo=dec(payload.get("accum_lo")),
            accum_hi=dec(payload.get("accum_hi")),
            magnitude_bound=dec(payload.get("magnitude_bound")),
            post_shift_bound=dec(payload.get("post_shift_bound")),
            accum_fraction=payload.get("accum_fraction"),
            required_accum_bits=payload.get("required_accum_bits"),
            headroom_bits=payload.get("headroom_bits"),
            wrap_possible=bool(payload.get("wrap_possible", False)),
        )


@dataclass
class OverflowCertificate:
    """Static no-wrap proof (or refutation) for one compiled kernel.

    Attributes:
        kernel_fingerprint: content hash of the certified kernel record
            (plans + integer tensors) — a stored certificate only
            vouches for the kernel bytes it was derived from.
        layers: per-layer bounds, in execution order.
    """

    kernel_fingerprint: str
    layers: List[LayerCertificate] = field(default_factory=list)

    @property
    def wrap_possible(self) -> bool:
        """Whether any layer's accumulator can wrap int64."""
        return any(layer.wrap_possible for layer in self.layers)

    @property
    def verdict(self) -> str:
        """``saturation-only`` or ``wrap-possible``."""
        return (VERDICT_WRAP_POSSIBLE if self.wrap_possible
                else VERDICT_SATURATION_ONLY)

    @property
    def min_headroom_bits(self) -> Optional[int]:
        """Smallest per-layer int64 headroom (None: no arithmetic)."""
        rooms = [layer.headroom_bits for layer in self.layers
                 if layer.arithmetic]
        return min(rooms) if rooms else None

    def accum_formats(self) -> Dict[str, FixedPointFormat]:
        """Per-layer tightest-safe ``accum_t`` formats, by layer name.

        The record :func:`repro.hw.codegen.emitter.emit_hls_project`
        consumes through its ``certificate=`` argument, so the emitted
        accumulator typedefs are exactly as wide as the proof requires.
        """
        formats = {}
        for layer in self.layers:
            fmt = layer.safe_accum_format()
            if fmt is not None:
                formats[layer.name] = fmt
        return formats

    def to_dict(self) -> dict:
        """JSON-ready view (inverted by :meth:`from_dict`)."""
        return {
            "certificate_version": CERTIFICATE_VERSION,
            "kernel_fingerprint": self.kernel_fingerprint,
            "verdict": self.verdict,
            "min_headroom_bits": self.min_headroom_bits,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OverflowCertificate":
        """Rebuild from a :meth:`to_dict` payload."""
        if (not isinstance(payload, dict)
                or payload.get("certificate_version") != CERTIFICATE_VERSION):
            raise CertificationError(
                "unsupported overflow-certificate record")
        return cls(
            kernel_fingerprint=str(payload["kernel_fingerprint"]),
            layers=[LayerCertificate.from_dict(entry)
                    for entry in payload.get("layers", [])],
        )

    def render(self) -> str:
        """Human-readable certificate table (CLI output)."""
        lines = [f"Overflow certificate: {self.verdict}"]
        if self.min_headroom_bits is not None:
            lines[0] += (f" (min int64 headroom "
                         f"{self.min_headroom_bits} bits)")
        for layer in self.layers:
            if not layer.arithmetic:
                lines.append(f"  {layer.name:<16} {layer.kind:<14} "
                             f"no integer arithmetic")
                continue
            fmt = layer.safe_accum_format()
            accum = f"  accum_t {fmt}" if fmt is not None else ""
            state = ("WRAP-POSSIBLE" if layer.wrap_possible
                     else f"headroom {layer.headroom_bits:>2} bits")
            lines.append(
                f"  {layer.name:<16} {layer.kind:<14} "
                f"|acc| <= 2^{(layer.magnitude_bound).bit_length()} "
                f"{state}{accum}")
        return "\n".join(lines)


def kernel_fingerprint(kernel) -> str:
    """Content hash of a kernel's plans and integer tensors.

    Covers everything the analysis reads — formats, attrs, shapes and
    every tensor byte — so a certificate can be matched to the exact
    kernel record it certifies (object identity is meaningless across
    save/load).
    """
    digest = hashlib.sha256()
    for plan in kernel.plans:
        digest.update(json.dumps(plan.to_dict(),
                                 sort_keys=True).encode("utf-8"))
        for key in sorted(plan.tensors):
            array = np.ascontiguousarray(plan.tensors[key])
            digest.update(key.encode("utf-8"))
            digest.update(str(array.dtype).encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(array.tobytes())
    return digest.hexdigest()


def certify_kernel(kernel) -> OverflowCertificate:
    """Derive the overflow certificate of ``kernel``.

    Args:
        kernel: a :class:`~repro.hw.compile.kernel.CompiledKernel` (any
            object with a ``plans`` list of
            :class:`~repro.hw.compile.kernel.LayerPlan` works).

    Returns:
        The :class:`OverflowCertificate`; check :attr:`~
        OverflowCertificate.verdict` before trusting the kernel on
        uncalibrated inputs.

    Raises:
        CertificationError: on a layer kind with no analysis rule.
    """
    layers = [certify_plan(plan) for plan in kernel.plans]
    return OverflowCertificate(
        kernel_fingerprint=kernel_fingerprint(kernel), layers=layers)


def certify_plan(plan) -> LayerCertificate:
    """Worst-case analysis of a single layer plan."""
    kind = plan.kind
    if kind in (KIND_FLATTEN, KIND_IDENTITY):
        # Pure data movement on the float carrier: no integer op runs.
        return LayerCertificate(name=plan.name, kind=kind)

    x = format_interval(plan.in_format)
    out_fraction = plan.out_format.fraction_bits
    shift = 0
    if kind in (KIND_CONV, KIND_LINEAR):
        acc, mag = affine_bounds(plan.tensors["weight"], x,
                                 plan.tensors.get("bias"))
        shift = plan.accum_fraction - out_fraction
    elif kind == KIND_BN:
        acc, mag = affine_bounds(plan.tensors["scale"].reshape(-1, 1), x,
                                 plan.tensors["shift"])
        shift = plan.accum_fraction - out_fraction
    elif kind == KIND_ACT:
        slope = plan.tensors.get("slope")
        if slope is None:
            # ReLU: max(codes, 0), then output saturation only.
            acc, mag = Interval(0, x.hi), x.hi
        else:
            # LeakyReLU: the negative branch scales by the slope code
            # at accumulator fraction; the positive branch is bounded
            # by the input range itself.
            negative = x.scale(int(slope))
            acc = negative.union(x)
            mag = max(negative.magnitude, x.magnitude)
            shift = plan.accum_fraction - out_fraction
    elif kind == KIND_POOL:
        if bool(plan.attrs.get("average", False)):
            terms = int(plan.attrs["kernel_size"]) ** 2
            acc, mag = x.scale(terms), x.magnitude * terms
        else:
            # Order-free integer max; padding injects the format's most
            # negative code, which the input interval already contains.
            acc, mag = x, x.magnitude
    elif kind == KIND_GPOOL:
        terms = int(np.prod(plan.in_shape[1:]))
        acc, mag = x.scale(terms), x.magnitude * terms
    elif kind == KIND_DROPOUT:
        # Per-pass quantized masks at the mask format's extremes —
        # sound for every dropout family, including signed Gaussian
        # noise tails that quantization clips into the format range.
        mask = format_interval(plan.mask_format)
        acc = x.mul(mask)
        mag = x.magnitude * mask.magnitude
        shift = plan.accum_fraction - out_fraction
    else:
        raise CertificationError(
            f"no range-analysis rule for layer kind {kind!r} "
            f"(layer {plan.name!r})")

    post = shifted_magnitude(mag, shift) if shift else mag
    wrap = mag > INT64_MAX or post > INT64_MAX
    return LayerCertificate(
        name=plan.name,
        kind=kind,
        accum_lo=acc.lo,
        accum_hi=acc.hi,
        magnitude_bound=mag,
        post_shift_bound=post,
        accum_fraction=plan.accum_fraction,
        required_accum_bits=required_bits(max(mag, post)),
        headroom_bits=63 - mag.bit_length(),
        wrap_possible=wrap,
    )


# ----------------------------------------------------------------------
# Persistence + standalone verification
# ----------------------------------------------------------------------
def save_certificate(certificate: OverflowCertificate, store) -> None:
    """Persist ``certificate`` as the :data:`CERTIFICATE_ARTIFACT`."""
    store.save_json(CERTIFICATE_ARTIFACT, certificate.to_dict())


def load_certificate(store) -> OverflowCertificate:
    """Load the persisted certificate from ``store``."""
    return OverflowCertificate.from_dict(
        store.load_json(CERTIFICATE_ARTIFACT))


@dataclass
class VerificationResult:
    """Outcome of :func:`verify_kernel`.

    Attributes:
        certificate: the freshly re-derived certificate.
        stored: the persisted certificate, when one exists.
        stale: True when a stored certificate no longer matches the
            kernel bytes or disagrees on the verdict.
    """

    certificate: OverflowCertificate
    stored: Optional[OverflowCertificate] = None
    stale: bool = False

    @property
    def ok(self) -> bool:
        """Accumulators provably cannot wrap and no stored lie exists."""
        return not self.certificate.wrap_possible and not self.stale


def verify_kernel(store, deployment=None) -> VerificationResult:
    """Re-derive a saved kernel's certificate and cross-check the store.

    Loads the kernel back from ``store`` (the directory ``repro
    compile`` wrote), re-runs the range analysis from the persisted
    bytes, and — when the store also holds a certificate — checks that
    it was derived from the same kernel fingerprint and reaches the
    same verdict.  This is the standalone ``repro verify-kernel`` gate:
    it trusts nothing but the artifact bytes.
    """
    from repro.hw.compile.compiler import load_kernel

    kernel = load_kernel(store, deployment)
    certificate = certify_kernel(kernel)
    stored = None
    stale = False
    if store.has(CERTIFICATE_ARTIFACT):
        stored = load_certificate(store)
        stale = (stored.kernel_fingerprint != certificate.kernel_fingerprint
                 or stored.verdict != certificate.verdict)
    return VerificationResult(certificate=certificate, stored=stored,
                              stale=stale)


__all__ = [
    "CERTIFICATE_ARTIFACT",
    "CERTIFICATE_VERSION",
    "CertificationError",
    "LayerCertificate",
    "OverflowCertificate",
    "VERDICT_SATURATION_ONLY",
    "VERDICT_WRAP_POSSIBLE",
    "VerificationResult",
    "certify_kernel",
    "certify_plan",
    "kernel_fingerprint",
    "load_certificate",
    "save_certificate",
    "verify_kernel",
]
