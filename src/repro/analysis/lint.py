"""Determinism / fork-safety linter (``repro lint``).

The repository's central invariant is that every prediction is a pure
function of ``(deployment, rows, seed)`` — byte-identical across
engines, shards, replicas and resumes.  The dynamic test suites check
that invariant on the code paths they execute; this AST pass *rejects*
the patterns that break it before they execute anywhere:

==========================  ===========================================
rule                        fires on
==========================  ===========================================
``unseeded-rng``            ``np.random.default_rng()`` /
                            ``random.Random()`` with no seed, or draws
                            from the process-global RNGs
                            (``np.random.normal(...)``,
                            ``random.random()``, ``np.random.seed``).
``wallclock-entropy``       ``time.time`` / ``datetime.now`` /
                            ``os.urandom`` / ``uuid.uuid4`` /
                            ``secrets.*`` inside determinism-critical
                            modules (mask plans, fingerprints, the
                            fixed-point compiler).
``set-iteration``           iterating a set expression (set literal,
                            set comprehension, ``set(...)`` /
                            ``frozenset(...)`` call) in a ``for`` or a
                            comprehension — iteration order is not
                            stable across processes under string-hash
                            randomization.
``unordered-float-sum``     ``sum(...)`` over a set expression or
                            ``dict.values()`` — float accumulation
                            order changes the bytes of the result.
``fork-shared-mutation``    assigning into ``*.tensors[...]`` or a
                            ``.data`` attribute inside ``repro/serve``
                            outside the sanctioned ``rebind_tensors``
                            path — mutating a shared-memory view after
                            fork silently diverges the replicas.
``fingerprint-sort``        ``json.dumps`` without ``sort_keys=True``
                            in fingerprint/artifact modules — dict
                            order must never reach a hash or a
                            persisted byte stream.
``broad-except``            ``except:`` / ``except Exception`` /
                            ``except BaseException`` inside the
                            serve/search stacks — handlers wide enough
                            to swallow injected faults (and real ones)
                            silently; catch the specific transport or
                            shed errors, or annotate the survival
                            points with ``# repro: allow[...]``.
==========================  ===========================================

Findings are suppressed inline with ``# repro: allow[<rule>]`` on the
offending statement's first line — grep-able, per-line, per-rule.  The
linter itself is deterministic: files walk sorted, findings sort by
``(path, line, col, rule)``.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Suppression comment syntax: ``# repro: allow[rule-id]``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9-]+)\]")

#: Modules whose randomness/time discipline feeds mask plans or
#: fingerprints; ``wallclock-entropy`` fires only here.
CRITICAL_MODULES = (
    "repro/dropout/",
    "repro/hw/compile/",
    "repro/hw/fixed_point.py",
    "repro/api/spec.py",
    "repro/serve/deployment.py",
    "repro/utils/rng.py",
    "repro/nn/inference.py",
    "repro/search/evaluator.py",
    "repro/analysis/",
    "repro/faults/",
)

#: Modules that hash or persist canonical byte streams;
#: ``fingerprint-sort`` fires only here.
FINGERPRINT_MODULES = (
    "repro/api/spec.py",
    "repro/api/stages.py",
    "repro/api/artifacts.py",
    "repro/serve/deployment.py",
    "repro/search/evaluator.py",
    "repro/analysis/",
)

#: Post-fork shared-memory domain; ``fork-shared-mutation`` fires only
#: here.
FORK_MODULES = (
    "repro/serve/",
    "repro/search/async_ea.py",
)

#: Fault-injected recovery domain; ``broad-except`` fires only here —
#: a handler wide enough to swallow an injected fault would make the
#: chaos suite (and real incidents) silently pass through it.
BROAD_EXCEPT_MODULES = (
    "repro/serve/",
    "repro/search/",
    "repro/faults/",
)

#: Functions allowed to repoint shared tensors (the sanctioned path).
SANCTIONED_REBINDERS = ("rebind_tensors",)

#: Global-RNG draw functions on ``np.random`` (module-level state).
_NP_GLOBAL_DRAWS = {
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "binomial",
    "standard_normal", "poisson", "beta", "gamma", "exponential",
}

#: Global-RNG draw functions on the stdlib ``random`` module.
_STDLIB_GLOBAL_DRAWS = {
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "randbytes",
}

#: Wall-clock / OS-entropy callables (dotted-suffix match).
_WALLCLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "date.today", "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.choice",
)

#: Every rule id the linter knows (the ``repro lint`` rules table).
RULES = (
    "unseeded-rng",
    "wallclock-entropy",
    "set-iteration",
    "unordered-float-sum",
    "fork-shared-mutation",
    "fingerprint-sort",
    "broad-except",
)


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: rule: message`` (editor-clickable)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}: {self.message}")

    def to_dict(self) -> dict:
        """JSON view (``repro lint --json``)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "message": self.message}


def _module_key(path: str) -> str:
    """Normalized forward-slash path for scope matching."""
    return path.replace(os.sep, "/")


def _in_scope(path: str, scopes: Sequence[str]) -> bool:
    key = _module_key(path)
    return any(scope in key for scope in scopes)


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name expression, or ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    """Whether ``node`` evaluates to a set (literal, comp, or call)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in ("set", "frozenset")
    return False


def _is_dict_values(node: ast.AST) -> bool:
    """Whether ``node`` is a bare ``<expr>.values()`` call."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args and not node.keywords)


class _Visitor(ast.NodeVisitor):
    """Single-file AST walk collecting rule violations."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[LintFinding] = []
        self._function_stack: List[str] = []
        self._critical = _in_scope(path, CRITICAL_MODULES)
        self._fingerprint = _in_scope(path, FINGERPRINT_MODULES)
        self._fork = _in_scope(path, FORK_MODULES)
        self._recovery = _in_scope(path, BROAD_EXCEPT_MODULES)

    # -- bookkeeping ---------------------------------------------------
    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(LintFinding(
            path=self.path, line=node.lineno, col=node.col_offset + 1,
            rule=rule, message=message))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    # -- unseeded-rng / wallclock-entropy / fingerprint-sort -----------
    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            self._check_rng_call(node, name)
            self._check_wallclock(node, name)
            self._check_json_dumps(node, name)
            self._check_unordered_sum(node, name)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, name: str) -> None:
        leaf = name.rsplit(".", 1)[-1]
        if (name.endswith("random.default_rng") or name == "default_rng"
                or name.endswith("random.Random") or name == "Random"):
            if not node.args and not node.keywords:
                self._report(
                    node, "unseeded-rng",
                    f"{name}() constructs an OS-entropy generator; pass "
                    f"an explicit seed (repro.utils.rng.new_rng)")
            return
        if name.startswith(("np.random.", "numpy.random.")):
            if leaf in _NP_GLOBAL_DRAWS:
                self._report(
                    node, "unseeded-rng",
                    f"{name} uses the process-global numpy RNG; thread "
                    f"an explicit np.random.Generator instead")
        elif name.startswith("random.") and name.count(".") == 1:
            if leaf in _STDLIB_GLOBAL_DRAWS:
                self._report(
                    node, "unseeded-rng",
                    f"{name} uses the process-global stdlib RNG; use a "
                    f"seeded random.Random instance instead")

    def _check_wallclock(self, node: ast.Call, name: str) -> None:
        if not self._critical:
            return
        if any(name == s or name.endswith("." + s)
               for s in _WALLCLOCK_SUFFIXES):
            self._report(
                node, "wallclock-entropy",
                f"{name} reads wall-clock/OS entropy inside a "
                f"determinism-critical module; derive values from the "
                f"experiment seed instead")

    def _check_json_dumps(self, node: ast.Call, name: str) -> None:
        if not self._fingerprint:
            return
        if not (name == "json.dumps" or name.endswith(".json.dumps")):
            return
        for keyword in node.keywords:
            if keyword.arg == "sort_keys":
                if (isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    return
        self._report(
            node, "fingerprint-sort",
            "json.dumps without sort_keys=True in a fingerprint/"
            "artifact module; dict order must not reach hashes or "
            "persisted bytes")

    def _check_unordered_sum(self, node: ast.Call, name: str) -> None:
        if name not in ("sum", "math.fsum"):
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.GeneratorExp):
            # sum(f(x) for x in <iter>): inspect the innermost source.
            arg = arg.generators[0].iter
        if _is_set_expr(arg) or _is_dict_values(arg):
            self._report(
                node, "unordered-float-sum",
                f"{name}() over an unordered container: float "
                f"accumulation order is unstable across processes; "
                f"sort first or sum an ordered sequence")

    # -- set-iteration -------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _check_set_iteration(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._report(
                iter_node, "set-iteration",
                "iterating a set: order is unstable across processes "
                "under hash randomization; iterate sorted(...) or an "
                "ordered container")

    # -- broad-except --------------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._recovery:
            self._check_broad_handler(node)
        self.generic_visit(node)

    def _check_broad_handler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node, "broad-except",
                "bare except in a fault-injected recovery module: it "
                "swallows injected faults (and real ones) silently; "
                "catch the specific transport/shed errors")
            return
        types = (node.type.elts if isinstance(node.type, ast.Tuple)
                 else [node.type])
        for expr in types:
            name = _dotted(expr)
            if name in ("Exception", "BaseException",
                        "builtins.Exception", "builtins.BaseException"):
                self._report(
                    node, "broad-except",
                    f"except {name} in a fault-injected recovery "
                    f"module: wide enough to swallow injected faults; "
                    f"narrow the handler or annotate the survival "
                    f"point with '# repro: allow[broad-except]'")
                return

    # -- fork-shared-mutation ------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_shared_mutation(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_mutation(node.target)
        self.generic_visit(node)

    def _check_shared_mutation(self, target: ast.AST) -> None:
        if not self._fork:
            return
        if any(fn in SANCTIONED_REBINDERS for fn in self._function_stack):
            return
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "tensors"):
            self._report(
                target, "fork-shared-mutation",
                "assignment into *.tensors[...] outside rebind_tensors: "
                "repoint shared kernel tensors only through the "
                "sanctioned rebind path")
        elif isinstance(target, ast.Attribute) and target.attr == "data":
            self._report(
                target, "fork-shared-mutation",
                "assignment to a .data attribute in the post-fork "
                "serving domain: mutating shared-memory parameter views "
                "diverges replicas; use the sanctioned rebind path")


def _suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """``# repro: allow[rule]`` comments, keyed by physical line."""
    allowed: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _ALLOW_RE.finditer(token.string):
                allowed.setdefault(token.start[0], set()).add(
                    match.group(1))
    except tokenize.TokenizeError:
        pass
    return allowed


def lint_source(source: str, path: str) -> List[LintFinding]:
    """Lint one module's source text.

    Args:
        source: the module text.
        path: its (repo-relative or absolute) path — drives the
            per-rule module scoping and appears in findings.

    Returns:
        Findings sorted by ``(line, col, rule)``, suppressions applied.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path=path, line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1, rule="syntax-error",
                            message=f"cannot parse: {exc.msg}")]
    visitor = _Visitor(path)
    visitor.visit(tree)
    allowed = _suppressed_lines(source)
    findings = [f for f in visitor.findings
                if f.rule not in allowed.get(f.line, ())]
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str) -> List[LintFinding]:
    """Lint one file on disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d != "__pycache__"
                                 and not d.startswith("."))
                files.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith(".py"))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise ValueError(
                f"lint target {path!r} is neither a directory nor a "
                f".py file")
    return sorted(dict.fromkeys(files))


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every Python file under ``paths`` (deterministic order)."""
    findings: List[LintFinding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule))


def render_findings(findings: Sequence[LintFinding]) -> str:
    """One line per finding plus a summary tail."""
    lines = [finding.render() for finding in findings]
    lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


__all__ = [
    "BROAD_EXCEPT_MODULES",
    "CRITICAL_MODULES",
    "FINGERPRINT_MODULES",
    "FORK_MODULES",
    "LintFinding",
    "RULES",
    "SANCTIONED_REBINDERS",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_findings",
]
