"""Static correctness tooling: overflow certificates + determinism lint.

Two pillars, both offline (no model execution):

* :mod:`repro.analysis.certify` — abstract interpretation over a
  compiled kernel's netlist that proves the widened ``int64``
  accumulators cannot wrap for *any* representable input, persisted as
  an :class:`OverflowCertificate` artifact (``repro compile`` emits
  one; ``repro verify-kernel`` re-derives and cross-checks it).
* :mod:`repro.analysis.lint` — an AST pass (``repro lint``) rejecting
  nondeterminism-prone code: unseeded RNGs, wall-clock entropy in mask
  or fingerprint paths, unordered iteration/accumulation, post-fork
  shared-memory mutation outside the sanctioned rebind path.
"""

from repro.analysis.certify import (
    CERTIFICATE_ARTIFACT,
    CERTIFICATE_VERSION,
    CertificationError,
    LayerCertificate,
    OverflowCertificate,
    VERDICT_SATURATION_ONLY,
    VERDICT_WRAP_POSSIBLE,
    VerificationResult,
    certify_kernel,
    certify_plan,
    kernel_fingerprint,
    load_certificate,
    save_certificate,
    verify_kernel,
)
from repro.analysis.intervals import (
    INT64_MAX,
    INT64_MIN,
    Interval,
    affine_bounds,
    format_interval,
    required_bits,
    shifted_magnitude,
)
from repro.analysis.lint import (
    LintFinding,
    RULES,
    lint_file,
    lint_paths,
    lint_source,
    render_findings,
)

__all__ = [
    "CERTIFICATE_ARTIFACT",
    "CERTIFICATE_VERSION",
    "CertificationError",
    "INT64_MAX",
    "INT64_MIN",
    "Interval",
    "LayerCertificate",
    "LintFinding",
    "OverflowCertificate",
    "RULES",
    "VERDICT_SATURATION_ONLY",
    "VERDICT_WRAP_POSSIBLE",
    "VerificationResult",
    "affine_bounds",
    "certify_kernel",
    "certify_plan",
    "format_interval",
    "kernel_fingerprint",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_certificate",
    "render_findings",
    "required_bits",
    "save_certificate",
    "shifted_magnitude",
    "verify_kernel",
]
