"""Exact integer interval arithmetic for the overflow certifier.

The range analysis runs entirely on Python integers (arbitrary
precision), so the analysis itself can never wrap while reasoning about
arithmetic that might.  An :class:`Interval` bounds every value a code
tensor can take; the helpers below propagate those bounds through the
integer operations :mod:`repro.hw.compile.kernel` executes.

Two bounds travel together through every affine layer:

* the **final interval** ``[lo, hi]`` of the completed accumulation,
  computed from the exact weight codes (each term contributes its
  sign-aware min/max); and
* the **magnitude bound** ``sum_k |w_k| * max(|x_lo|, x_hi)``, which
  additionally dominates *every partial sum in every summation order* —
  the property that makes the certificate sound for a GEMM whose
  reduction order (BLAS blocking, im2col tiling) is unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Largest value an ``int64`` accumulator can hold.
INT64_MAX = (1 << 63) - 1

#: Smallest value an ``int64`` accumulator can hold.
INT64_MIN = -(1 << 63)


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (Python ints, exact)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def magnitude(self) -> int:
        """Largest absolute value the interval contains."""
        return max(abs(self.lo), abs(self.hi))

    def shift(self, offset: int) -> "Interval":
        """Translate the interval by ``offset``."""
        return Interval(self.lo + offset, self.hi + offset)

    def scale(self, k: int) -> "Interval":
        """Multiply by the exact integer ``k`` (sign-aware)."""
        a, b = k * self.lo, k * self.hi
        return Interval(min(a, b), max(a, b))

    def add(self, other: "Interval") -> "Interval":
        """Sum of one value from each interval."""
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def mul(self, other: "Interval") -> "Interval":
        """Product of one value from each interval (four corners)."""
        corners = (self.lo * other.lo, self.lo * other.hi,
                   self.hi * other.lo, self.hi * other.hi)
        return Interval(min(corners), max(corners))

    def union(self, other: "Interval") -> "Interval":
        """Smallest interval containing both."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi


def format_interval(fmt) -> Interval:
    """Code range of a :class:`~repro.hw.fixed_point.FixedPointFormat`.

    ``to_fixed`` saturates into exactly this two's-complement range, so
    it bounds *any representable input* of the format — the starting
    point of every per-layer analysis.
    """
    half = 1 << (fmt.total_bits - 1)
    return Interval(-half, half - 1)


def _column_sums(weights: np.ndarray) -> Tuple[list, list]:
    """Per-row positive/negative code sums of a 2-D weight matrix.

    Returns ``(pos, neg)`` lists of exact Python ints: ``pos[r]`` sums
    the positive codes of row ``r``, ``neg[r]`` the negative ones.
    Rows are the reduction outputs (conv filters, linear units); the
    fast ``int64`` path is used only when it provably cannot overflow,
    otherwise the sums fall back to exact object arithmetic.
    """
    w = np.asarray(weights)
    if w.ndim == 1:
        w = w.reshape(-1, 1)
    if w.size == 0:
        return [0], [0]
    peak = max(int(w.max()), -int(w.min()))
    # int64 partial sums stay exact while |w| * columns < 2**62.
    if peak and peak * w.shape[-1] >= (1 << 62):
        rows = w.astype(object)
        pos = [int(np.where(r > 0, r, 0).sum()) for r in rows]
        neg = [int(np.where(r < 0, r, 0).sum()) for r in rows]
        return pos, neg
    pos64 = np.where(w > 0, w, 0).sum(axis=-1, dtype=np.int64)
    neg64 = np.where(w < 0, w, 0).sum(axis=-1, dtype=np.int64)
    return [int(v) for v in pos64], [int(v) for v in neg64]


def affine_bounds(weights: np.ndarray, x: Interval,
                  bias: Optional[np.ndarray] = None
                  ) -> Tuple[Interval, int]:
    """Bound ``codes @ weights.T (+ bias)`` for ``codes`` in ``x``.

    Every element of the input vector ranges independently over ``x``
    (the worst case over all representable inputs).  For each output
    row ``r`` the exact extremes are ``hi_r = x.hi * pos_r + x.lo *
    neg_r`` and symmetrically for ``lo_r``; the magnitude bound is
    ``max(|x.lo|, x.hi) * (pos_r - neg_r) + |bias_r|``, which dominates
    every partial sum regardless of accumulation order.

    Args:
        weights: 2-D integer code matrix, reduction along the last
            axis (1-D input is treated as a per-row scalar, i.e. the
            batch-norm per-channel case).
        x: interval of every input code.
        bias: optional per-row integer bias codes added after the
            reduction (at the accumulator's scale).

    Returns:
        ``(interval, magnitude_bound)`` over all output rows.
    """
    pos, neg = _column_sums(np.asarray(weights))
    amax = x.magnitude
    biases = ([0] * len(pos) if bias is None
              else [int(b) for b in np.asarray(bias).ravel()])
    if bias is not None and len(biases) != len(pos):
        raise ValueError(
            f"bias has {len(biases)} rows, weights have {len(pos)}")
    lo = hi = None
    mag = 0
    for p, n, b in zip(pos, neg, biases):
        row_hi = x.hi * p + x.lo * n + b
        row_lo = x.lo * p + x.hi * n + b
        row_mag = amax * (p - n) + abs(b)
        lo = row_lo if lo is None else min(lo, row_lo)
        hi = row_hi if hi is None else max(hi, row_hi)
        mag = max(mag, row_mag)
    return Interval(lo, hi), mag


def shifted_magnitude(magnitude: int, shift: int) -> int:
    """Worst-case magnitude after ``round_shift(acc, shift)``.

    Positive shifts divide (rounding can add one ulp); non-positive
    shifts are exact left shifts — the case where an otherwise-safe
    accumulator can still wrap int64 inside ``requantize``.
    """
    if shift <= 0:
        return magnitude << (-shift)
    return (magnitude >> shift) + 1


def required_bits(magnitude: int) -> int:
    """Two's-complement width that safely holds ``±magnitude``."""
    return magnitude.bit_length() + 1


__all__ = [
    "INT64_MAX",
    "INT64_MIN",
    "Interval",
    "affine_bounds",
    "format_interval",
    "required_bits",
    "shifted_magnitude",
]
