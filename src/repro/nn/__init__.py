"""A from-scratch numpy deep-learning substrate.

Replaces PyTorch/Keras for this reproduction (see DESIGN.md).  Provides
stateful layers with manual forward/backward passes, optimizers, losses
and (de)serialization — everything the dropout-search framework needs.
"""

from repro.nn.activations import Flatten, LeakyReLU, ReLU
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.fastpath import (
    TrainWorkspace,
    current_workspace,
    fast_training,
    is_fast_training,
)
from repro.nn.functional import (
    col2im,
    conv_output_size,
    im2col,
    log_softmax,
    one_hot,
    softmax,
)
from repro.nn.inference import (
    MCBatchContext,
    current_mc_batch,
    inference_mode,
    is_inference,
    mc_batch,
)
from repro.nn.linear import Linear
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import DTYPE, Identity, Module, Parameter
from repro.nn.norm import BatchNorm2d
from repro.nn.optim import SGD, Adam, CosineAnnealingLR, LRScheduler, StepLR
from repro.nn.pool import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.serialization import load_checkpoint, save_checkpoint

__all__ = [
    "DTYPE",
    "SGD",
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CosineAnnealingLR",
    "CrossEntropyLoss",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "LRScheduler",
    "LeakyReLU",
    "Linear",
    "MCBatchContext",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "StepLR",
    "TrainWorkspace",
    "col2im",
    "conv_output_size",
    "current_mc_batch",
    "current_workspace",
    "fast_training",
    "im2col",
    "inference_mode",
    "is_fast_training",
    "is_inference",
    "load_checkpoint",
    "log_softmax",
    "mc_batch",
    "one_hot",
    "save_checkpoint",
    "softmax",
]
