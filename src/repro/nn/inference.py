"""Inference-mode and Monte-Carlo batch execution contexts.

Two small, orthogonal mechanisms used by the batched MC-dropout engine
(:mod:`repro.bayes.mc`):

* :func:`inference_mode` — a ``torch.no_grad()``-style context.  While
  active, layers skip their backward caches (im2col columns, pooling
  argmax indices, activation masks), which removes a large share of the
  forward cost for inference-only workloads.  Calling ``backward`` on a
  layer whose last forward ran under inference mode raises the usual
  "backward called before forward" error.

* :class:`MCBatchContext` / :func:`mc_batch` — the *mask plan* of one
  Monte-Carlo prediction.  All ``T`` dropout masks of every stochastic
  layer are sampled lazily at the **canonical** shape (the full input
  batch, pass-major order) through the layer's
  :meth:`~repro.dropout.base.DropoutLayer.sample_masks` API.  Because
  masks are planned at full-batch granularity, micro-batching never
  perturbs the random stream: every ``batch_size`` setting and both
  engines consume identical masks.

The context also carries the *sample-sliced* execution convention that
keeps the fused forward pass bit-identical to the looped reference:

* every per-row operation (conv as per-image matmul, pooling,
  activations, normalization with frozen statistics) is batch-size
  invariant by construction, and
* :class:`~repro.nn.linear.Linear` consults :func:`current_mc_batch` to
  perform its GEMM per Monte-Carlo sample slice ``(T, rows, K)`` rather
  than on the fused ``(T * rows, K)`` matrix — BLAS results for a row
  depend on the GEMM's row count, so slicing pins the reference dims.

The library is single-threaded; the active contexts are module globals.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional

import numpy as np

_INFERENCE_DEPTH = 0
_ACTIVE_MC_BATCH: Optional["MCBatchContext"] = None


def is_inference() -> bool:
    """True while an :func:`inference_mode` context is active."""
    return _INFERENCE_DEPTH > 0


@contextlib.contextmanager
def inference_mode():
    """Context manager: layers skip backward caches while active."""
    global _INFERENCE_DEPTH
    _INFERENCE_DEPTH += 1
    try:
        yield
    finally:
        _INFERENCE_DEPTH -= 1


def current_mc_batch() -> Optional["MCBatchContext"]:
    """The active :class:`MCBatchContext`, or None outside an engine."""
    return _ACTIVE_MC_BATCH


@contextlib.contextmanager
def mc_batch(ctx: "MCBatchContext"):
    """Activate ``ctx`` for the duration of one MC prediction."""
    global _ACTIVE_MC_BATCH
    if _ACTIVE_MC_BATCH is not None:
        raise RuntimeError("nested mc_batch contexts are not supported")
    _ACTIVE_MC_BATCH = ctx
    try:
        yield ctx
    finally:
        _ACTIVE_MC_BATCH = None


class MCBatchContext:
    """Mask plan and execution state of one Monte-Carlo prediction.

    Args:
        num_samples: number of Monte-Carlo samples ``T``.
        total_rows: full input batch size ``N`` — the canonical shape
            at which every layer's masks are sampled, independently of
            any micro-batching.

    The engine mutates :attr:`sample_index` / chunk bounds between
    forward calls:

    * ``sample_index = t`` — looped execution: the model processes one
      ``(rows, ...)`` chunk under Monte-Carlo sample ``t``.
    * ``sample_index = None`` — fused execution: the first stochastic
      dropout layer *tiles* its ``(rows, ...)`` input to
      ``(T * rows, ...)`` (everything upstream of it is shared across
      samples and computed once), and every stochastic layer applies
      the mask slices of all ``T`` samples at once.
    """

    def __init__(self, num_samples: int, total_rows: int) -> None:
        if num_samples < 1:
            raise ValueError(
                f"num_samples must be positive, got {num_samples}")
        self.num_samples = int(num_samples)
        self.total_rows = int(total_rows)
        self.row_start = 0
        self.rows = int(total_rows)
        self.sample_index: Optional[int] = None
        self._plans: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Engine-facing state transitions
    # ------------------------------------------------------------------
    def set_sample(self, sample_index: Optional[int]) -> None:
        """Select looped sample ``t``, or None for fused execution."""
        self.sample_index = sample_index

    def set_chunk(self, row_start: int, rows: int) -> None:
        """Bound the current micro-batch to input rows [start, start+rows)."""
        self.row_start = int(row_start)
        self.rows = int(rows)

    # ------------------------------------------------------------------
    # Mask plan
    # ------------------------------------------------------------------
    def masks_for(self, layer, feature_shape) -> np.ndarray:
        """The layer's planned masks, sampled on first use.

        Masks are drawn once per layer at the canonical shape
        ``(T, total_rows, *feature_shape)`` (possibly broadcast-compressed
        along any axis), so the stream matches ``T`` sequential
        full-batch draws regardless of micro-batching.
        """
        key = id(layer)
        masks = self._plans.get(key)
        if masks is None:
            masks = np.asarray(layer.sample_masks(
                self.num_samples, (self.total_rows,) + tuple(feature_shape)))
            if masks.ndim != len(feature_shape) + 2:
                raise ValueError(
                    f"sample_masks returned ndim {masks.ndim}, expected "
                    f"{len(feature_shape) + 2}")
            self._plans[key] = masks
        return masks

    def _mask_slice(self, masks: np.ndarray) -> np.ndarray:
        """Rows [row_start, row_start + rows) of the planned masks.

        Broadcast-compressed plans (row axis of size 1, e.g. Masksembles
        channel masks shared across the batch) pass through unchanged.
        """
        if masks.shape[1] == 1:
            return masks
        return masks[:, self.row_start:self.row_start + self.rows]

    # ------------------------------------------------------------------
    # Dropout application (called from DropoutLayer.forward)
    # ------------------------------------------------------------------
    def apply(self, layer, x: np.ndarray) -> np.ndarray:
        """Apply the layer's planned mask(s) to activation ``x``.

        In looped mode multiplies by sample ``t``'s mask slice.  In
        fused mode multiplies by all ``T`` slices at once, tiling ``x``
        across samples if this is the first stochastic layer of the
        network (the shared pre-dropout prefix is computed only once).
        """
        feat = x.shape[1:]
        sl = self._mask_slice(self.masks_for(layer, feat))
        if self.sample_index is not None:
            return np.multiply(x, sl[self.sample_index])
        t, b = self.num_samples, self.rows
        if x.shape[0] == b:
            # First stochastic layer: broadcast-tile across samples.
            y = x[None, ...] * sl
        elif x.shape[0] == t * b:
            y = x.reshape((t, b) + feat) * sl
        else:
            raise ValueError(
                f"activation batch {x.shape[0]} matches neither the chunk "
                f"rows ({b}) nor the fused rows ({t * b})")
        return y.reshape((t * b,) + tuple(feat))

    # ------------------------------------------------------------------
    # Linear-layer convention
    # ------------------------------------------------------------------
    def linear_slices(self, batch_rows: int) -> Optional[int]:
        """Sample count to slice a fused GEMM into, or None for a plain one.

        A linear layer processing the fused ``(T * rows, K)`` activation
        must run one GEMM per sample slice so each slice has the same
        row count as the looped reference pass.  Untiled (shared-prefix)
        activations and looped passes use the plain path.
        """
        if self.sample_index is not None or self.num_samples == 1:
            return None
        if batch_rows == self.num_samples * self.rows and batch_rows != self.rows:
            return self.num_samples
        return None


__all__ = [
    "MCBatchContext",
    "current_mc_batch",
    "inference_mode",
    "is_inference",
    "mc_batch",
]
