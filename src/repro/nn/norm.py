"""Batch normalization over channel dimension of image tensors."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import init
from repro.nn.module import DTYPE, Module, Parameter
from repro.utils.validation import check_positive_int, check_shape_4d


class BatchNorm2d(Module):
    """Per-channel batch normalization for ``(N, C, H, W)`` inputs.

    Maintains running mean/variance for evaluation mode, exactly like
    ``torch.nn.BatchNorm2d`` (momentum convention: ``running = (1 - m) *
    running + m * batch``).

    Args:
        num_features: channel count ``C``.
        eps: numerical stabilizer added to the variance.
        momentum: running-statistics update rate.
    """

    def __init__(self, num_features: int, *, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = check_positive_int(num_features, "num_features")
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features, dtype=DTYPE)
        self.running_var = np.ones(num_features, dtype=DTYPE)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = check_shape_4d(x, "x")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.shape[1]}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(DTYPE)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(DTYPE)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        if self.training:
            self._cache = (x_hat, inv_std)
        y = (self.weight.data[None, :, None, None] * x_hat
             + self.bias.data[None, :, None, None])
        return y.astype(DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(
                "backward called before a training-mode forward")
        x_hat, inv_std = self._cache
        n, c, h, w = grad_out.shape
        m = n * h * w
        self.weight.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        g_hat = grad_out * self.weight.data[None, :, None, None]
        sum_g = g_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_x = (inv_std[None, :, None, None] / m) * (
            m * g_hat - sum_g - x_hat * sum_gx)
        self._cache = None
        return grad_x.astype(DTYPE)

    def extra_state(self) -> Dict[str, np.ndarray]:
        return {
            "running_mean": self.running_mean,
            "running_var": self.running_var,
        }

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        if "running_mean" in state:
            self.running_mean = np.asarray(state["running_mean"], dtype=DTYPE).copy()
        if "running_var" in state:
            self.running_var = np.asarray(state["running_var"], dtype=DTYPE).copy()

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps})"
