"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax
from repro.nn.module import DTYPE


class CrossEntropyLoss:
    """Softmax cross-entropy on raw logits, with optional label smoothing.

    Usage::

        loss = criterion(logits, targets)   # scalar float
        dlogits = criterion.backward()      # (N, K) gradient

    Args:
        label_smoothing: mass uniformly redistributed across classes;
            0.0 recovers plain cross-entropy.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._probs: Optional[np.ndarray] = None
        self._targets_soft: Optional[np.ndarray] = None

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got {logits.shape}")
        n, k = logits.shape
        hard = one_hot(np.asarray(targets), k)
        if self.label_smoothing > 0.0:
            soft = (1.0 - self.label_smoothing) * hard + self.label_smoothing / k
        else:
            soft = hard
        logp = log_softmax(logits, axis=1)
        self._probs = softmax(logits, axis=1)
        self._targets_soft = soft
        return float(-(soft * logp).sum() / n)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probs is None or self._targets_soft is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        grad = (self._probs - self._targets_soft) / n
        self._probs = None
        self._targets_soft = None
        return grad.astype(DTYPE)
