"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.functional import check_labels, log_softmax, one_hot, softmax
from repro.nn.module import DTYPE


class CrossEntropyLoss:
    """Softmax cross-entropy on raw logits, with optional label smoothing.

    Usage::

        loss = criterion(logits, targets)   # scalar float
        dlogits = criterion.backward()      # (N, K) gradient

    The unsmoothed path (the training default) never materializes the
    one-hot target matrix: the forward is an index-gathered NLL (one
    shared max/exp pass feeding both the probabilities and the
    log-normalizer) and the gradient is an in-place subtract-at-label
    on the cached probabilities.  Both are bitwise-identical to the
    dense ``one_hot`` formulation (regression-pinned by
    ``tests/test_nn_losses.py``); the gathered terms are summed through
    a zero matrix of the logits' shape so even the reduction order
    matches the dense path float-for-float.

    Args:
        label_smoothing: mass uniformly redistributed across classes;
            0.0 recovers plain cross-entropy.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._probs: Optional[np.ndarray] = None
        self._targets_soft: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got {logits.shape}")
        n, k = logits.shape
        if self.label_smoothing > 0.0:
            return self._forward_smoothed(logits, targets, n, k)
        targets = check_labels(targets, k)
        # One shared stabilization pass: z and exp(z) feed both the
        # softmax probabilities (cached for backward) and the gathered
        # log-probabilities, instead of separate softmax/log_softmax
        # passes each redoing the max-subtract and exponentials.
        z = logits - np.max(logits, axis=1, keepdims=True)
        ez = np.exp(z)
        denom = np.sum(ez, axis=1, keepdims=True)
        rows = np.arange(n)
        picked = z[rows, targets] - np.log(denom[:, 0])
        self._probs = ez / denom
        self._targets_soft = None
        self._labels = targets
        # Summing the gathered terms through a zero (N, K) matrix keeps
        # the reduction tree identical to the dense formulation's
        # ``(soft * logp).sum()`` — a flat gathered ``picked.sum()``
        # pairs the addends differently and drifts by ulps.
        dense = np.zeros((n, k), dtype=np.result_type(DTYPE, z.dtype))
        dense[rows, targets] = picked
        return float(-dense.sum() / n)

    def _forward_smoothed(self, logits: np.ndarray, targets: np.ndarray,
                          n: int, k: int) -> float:
        hard = one_hot(np.asarray(targets), k)
        soft = (1.0 - self.label_smoothing) * hard + self.label_smoothing / k
        logp = log_softmax(logits, axis=1)
        self._probs = softmax(logits, axis=1)
        self._targets_soft = soft
        self._labels = None
        return float(-(soft * logp).sum() / n)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probs is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        if self._labels is not None:
            # In-place subtract-at-label on the cached probabilities:
            # label entries become (p - 1) / n and the rest p / n —
            # float-for-float the dense ``(probs - one_hot) / n``.
            grad = self._probs
            grad[np.arange(n), self._labels] -= 1.0
            grad /= n
            self._probs = None
            self._labels = None
            return grad.astype(DTYPE, copy=False)
        grad = (self._probs - self._targets_soft) / n
        self._probs = None
        self._targets_soft = None
        return grad.astype(DTYPE)
