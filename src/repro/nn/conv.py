"""2-D convolution via im2col lowering, with manual backward pass."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import init
from repro.nn.fastpath import current_workspace
from repro.nn.functional import col2im, conv_output_size, im2col
from repro.nn.inference import is_inference
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int, check_shape_4d


class Conv2d(Module):
    """Square-kernel 2-D convolution over ``(N, C, H, W)`` inputs.

    The forward pass lowers the input with :func:`im2col` and performs a
    single matrix multiply per batch — the same lowering the HLS
    accelerator model assumes, which keeps algorithm-side MAC counts and
    hardware-side cycle estimates consistent.

    The backward pass is two GEMMs over the same lowering: one
    flattened ``(F, N*L) @ (N*L, CKK)`` product for the weight gradient
    and one broadcast batch of per-image ``(CKK, F) @ (F, L)`` products
    for the column gradient, which :func:`col2im` scatters back to
    image form.  Under an active training workspace
    (:mod:`repro.nn.fastpath`) every intermediate is written into a
    persistent per-layer buffer instead of a fresh allocation; the
    floats are bitwise-identical either way.

    Args:
        in_channels: input channel count ``C``.
        out_channels: number of filters ``F``.
        kernel_size: square kernel side length.
        stride: window stride.
        padding: symmetric zero padding.
        bias: whether to learn a per-filter bias.
        rng: seed or generator for weight initialization.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 *, stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: SeedLike = None) -> None:
        super().__init__()
        self.in_channels = check_positive_int(in_channels, "in_channels")
        self.out_channels = check_positive_int(out_channels, "out_channels")
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(stride, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        weight_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.he_normal(weight_shape, rng))
        self.bias: Optional[Parameter] = (
            Parameter(init.zeros((out_channels,))) if bias else None
        )
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def output_shape(self, h: int, w: int) -> Tuple[int, int]:
        """Spatial output size for an ``(h, w)`` input."""
        oh = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return oh, ow

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = check_shape_4d(x, "x")
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"expected {self.in_channels} input channels, got {c}"
            )
        oh, ow = self.output_shape(h, w)
        ckk = c * self.kernel_size * self.kernel_size
        ws = current_workspace() if not is_inference() else None
        if ws is not None:
            cols = im2col(x, self.kernel_size, self.stride, self.padding,
                          out=ws.buffer(self, "cols", (n, ckk, oh * ow)))
        else:
            cols = im2col(x, self.kernel_size, self.stride, self.padding)
        if is_inference():
            self._cols = None
            self._x_shape = None
        else:
            self._cols = cols
            self._x_shape = x.shape
        w2d = self.weight.data.reshape(self.out_channels, -1)
        # Broadcasted batch of per-image GEMMs: (F, CKK) @ (N, CKK, L)
        # -> (N, F, L).  Each image is an independent fixed-dims GEMM,
        # so per-image results do not depend on the batch size — the
        # bitwise invariance the batched MC engine's equivalence
        # contract relies on (an einsum contraction may switch paths
        # with N and break it).
        if ws is not None:
            y = np.matmul(w2d, cols,
                          out=ws.buffer(self, "y", (n, self.out_channels,
                                                    oh * ow)))
        else:
            y = np.matmul(w2d, cols)
        if self.bias is not None:
            np.add(y, self.bias.data[None, :, None], out=y)
        return y.reshape(n, self.out_channels, oh, ow)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n = grad_out.shape[0]
        f = self.out_channels
        cols = self._cols
        ckk = cols.shape[1]
        l = cols.shape[2]
        g = grad_out.reshape(n, f, -1)  # (N, F, L)
        w2d = self.weight.data.reshape(f, -1)
        ws = current_workspace()
        # grad_w: one flattened (F, N*L) @ (N*L, CKK) GEMM.  The two
        # operands are gathered into contiguous layout first (that copy
        # is what the einsum formulation also paid, hidden inside the
        # contraction) — into persistent buffers on the fast path.
        if ws is not None:
            gt = ws.buffer(self, "gt", (f, n, l))
            np.copyto(gt, g.transpose(1, 0, 2))
            colst = ws.buffer(self, "colst", (n, l, ckk))
            np.copyto(colst, cols.transpose(0, 2, 1))
            grad_w = np.matmul(gt.reshape(f, n * l),
                               colst.reshape(n * l, ckk),
                               out=ws.buffer(self, "gw", (f, ckk)))
        else:
            gt = np.ascontiguousarray(g.transpose(1, 0, 2))
            colst = np.ascontiguousarray(cols.transpose(0, 2, 1))
            grad_w = np.matmul(gt.reshape(f, n * l),
                               colst.reshape(n * l, ckk))
        self.weight.grad += grad_w.reshape(self.weight.data.shape)
        if self.bias is not None:
            self.bias.grad += g.sum(axis=(0, 2))
        # grad_cols: broadcast batch of per-image (CKK, F) @ (F, L)
        # GEMMs, mirroring the forward's per-image batching.
        if ws is not None:
            grad_cols = np.matmul(w2d.T, g,
                                  out=ws.buffer(self, "gcols", (n, ckk, l)))
            hp = self._x_shape[2] + 2 * self.padding
            wp = self._x_shape[3] + 2 * self.padding
            gx_buf = ws.buffer(self, "gx", (n, self._x_shape[1], hp, wp))
            grad_x = col2im(grad_cols, self._x_shape, self.kernel_size,
                            self.stride, self.padding, out=gx_buf)
        else:
            grad_cols = np.matmul(w2d.T, g)
            grad_x = col2im(grad_cols, self._x_shape, self.kernel_size,
                            self.stride, self.padding)
        self._cols = None
        self._x_shape = None
        return grad_x

    def macs_per_image(self, h: int, w: int) -> int:
        """Multiply-accumulate count for one image — used by repro.hw."""
        oh, ow = self.output_shape(h, w)
        k2 = self.kernel_size * self.kernel_size
        return oh * ow * self.out_channels * self.in_channels * k2

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding})")
