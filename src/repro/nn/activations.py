"""Activation and shape-adapter layers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.fastpath import current_workspace
from repro.nn.inference import is_inference
from repro.nn.module import DTYPE, Module


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``.

    Under an active training workspace both passes run as single SIMD
    ufuncs into persistent per-layer buffers: the forward is
    ``np.maximum(x, 0.0, out=...)`` — float-identical to the reference
    ``np.where`` (ties at ``-0.0`` resolve to ``+0.0`` either way) —
    and the backward multiplies the gradient by the boolean mask.  The
    masked-out backward entries are ``-0.0`` where the reference writes
    ``+0.0`` for a negative gradient; the sign washes out at the next
    ``+=``-onto-zeros accumulation, so parameter gradients, losses and
    weights stay byte-identical (pinned by the trajectory tests).
    """

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if is_inference():
            self._mask = None
            return np.maximum(x, 0).astype(DTYPE, copy=False)
        ws = current_workspace()
        if ws is not None:
            self._mask = np.greater(
                x, 0, out=ws.buffer(self, "mask", x.shape, bool))
            return np.maximum(x, 0.0, out=ws.buffer(self, "out", x.shape))
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        ws = current_workspace()
        if ws is not None:
            grad = np.multiply(grad_out, self._mask,
                               out=ws.buffer(self, "grad", grad_out.shape))
        else:
            grad = np.where(self._mask, grad_out, 0.0).astype(DTYPE)
        self._mask = None
        return grad

    def __repr__(self) -> str:
        return "ReLU()"


class LeakyReLU(Module):
    """Leaky rectified linear unit with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if is_inference():
            self._mask = None
            return np.where(x > 0, x, self.negative_slope * x).astype(DTYPE)
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x).astype(DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = np.where(self._mask, grad_out,
                        self.negative_slope * grad_out).astype(DTYPE)
        self._mask = None
        return grad

    def __repr__(self) -> str:
        return f"LeakyReLU(negative_slope={self.negative_slope})"


class Flatten(Module):
    """Collapse all non-batch dimensions: ``(N, ...) -> (N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out.reshape(self._shape)
        self._shape = None
        return grad

    def __repr__(self) -> str:
        return "Flatten()"
