"""Module/Parameter core of the numpy deep-learning substrate.

This substrate replaces PyTorch for the reproduction (see DESIGN.md).
It implements the small subset of a deep-learning framework the paper's
search framework actually needs:

* stateful layers with explicit ``forward``/``backward`` passes,
* trainable :class:`Parameter` tensors with accumulated gradients,
* a training/evaluation mode switch (batch norm, dropout),
* recursive parameter discovery and ``state_dict`` (de)serialization.

Gradient flow is manual rather than taped: each layer caches whatever it
needs during ``forward`` and consumes it in ``backward``.  Layers are
therefore *single-use per step* — the same module instance must not
appear twice in one forward graph.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

#: Default floating-point dtype for all activations and parameters.
DTYPE = np.float32


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes:
        data: the parameter value, stored as ``float32``.
        grad: gradient of the loss w.r.t. ``data``; same shape as ``data``.
    """

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=DTYPE)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and sub-:class:`Module` objects
    as attributes; :meth:`named_parameters` and :meth:`modules` discover
    them by attribute walking, mirroring the PyTorch convention.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Propagate ``grad_out`` back through the layer.

        Accumulates parameter gradients into ``Parameter.grad`` and
        returns the gradient with respect to the layer's input.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def children(self) -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(attribute_name, module)`` for direct sub-modules.

        Attributes whose name starts with an underscore are treated as
        private references (caches, ordering lists, choice banks) and
        are *not* walked — each module must be reachable through exactly
        one public attribute path.
        """
        for name, value in vars(self).items():
            if name.startswith("_"):
                continue
            if isinstance(value, Module):
                yield name, value
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield f"{name}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first, deduped.

        Traversal follows attribute-definition order so that, e.g., the
        dropout slots of a network are yielded in network order.
        """
        return self._walk(set())

    def _walk(self, seen: set) -> Iterator["Module"]:
        if id(self) in seen:
            return
        seen.add(id(self))
        yield self
        for _, child in self.children():
            yield from child._walk(seen)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` for all parameters."""
        for name, value in vars(self).items():
            if name.startswith("_"):
                continue
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters as a list (deduplicated by identity)."""
        seen: Dict[int, Parameter] = {}
        for _, p in self.named_parameters():
            seen.setdefault(id(p), p)
        return list(seen.values())

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Put the module tree into training mode."""
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        """Put the module tree into evaluation mode.

        Note that MC-dropout layers in this library stay *stochastic* in
        eval mode when their ``mc_mode`` flag is set — that is the whole
        point of dropout-based Bayesian inference (paper Sec. 2.1.2).
        """
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        """Zero the gradients of every parameter in the tree."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat ``name -> array`` mapping of parameter values.

        Buffers (e.g. batch-norm running statistics) are included by
        layers that override :meth:`extra_state`.
        """
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for mod_name, module in self._named_modules():
            for key, value in module.extra_state().items():
                state[f"{mod_name}{key}" if mod_name else key] = np.copy(value)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values (and buffers) produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        consumed = set()
        for name, p in params.items():
            if name not in state:
                raise KeyError(f"state dict is missing parameter {name!r}")
            value = np.asarray(state[name], dtype=DTYPE)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"expected {p.data.shape}, got {value.shape}"
                )
            p.data = value.copy()
            consumed.add(name)
        for mod_name, module in self._named_modules():
            extra = module.extra_state()
            loaded = {}
            for key in extra:
                full = f"{mod_name}{key}" if mod_name else key
                if full in state:
                    loaded[key] = state[full]
                    consumed.add(full)
            if loaded:
                module.load_extra_state(loaded)
        unknown = set(state) - consumed
        if unknown:
            raise KeyError(f"unexpected keys in state dict: {sorted(unknown)}")

    def extra_state(self) -> Dict[str, np.ndarray]:
        """Non-parameter buffers to persist; overridden by e.g. BatchNorm."""
        return {}

    def load_extra_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore buffers produced by :meth:`extra_state`."""
        # Default: nothing to restore.

    def _named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self.children():
            yield from child._named_modules(prefix=f"{prefix}{name}.")

    def __repr__(self) -> str:
        child_reprs = [f"  ({name}): {child!r}" for name, child in self.children()]
        if not child_reprs:
            return f"{type(self).__name__}()"
        inner = "\n".join(child_reprs).replace("\n", "\n  ")
        return f"{type(self).__name__}(\n  {inner}\n)"


class Identity(Module):
    """A no-op layer; useful as a placeholder in optional slots."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out
