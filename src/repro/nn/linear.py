"""Fully connected layer with manual backward pass."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.inference import current_mc_batch, is_inference
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


class Linear(Module):
    """Affine layer ``y = x @ W.T + b``.

    Args:
        in_features: input feature count.
        out_features: output feature count.
        bias: whether to learn an additive bias.
        rng: seed or generator for weight initialization.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 bias: bool = True, rng: SeedLike = None) -> None:
        super().__init__()
        self.in_features = check_positive_int(in_features, "in_features")
        self.out_features = check_positive_int(out_features, "out_features")
        self.weight = Parameter(init.he_normal((out_features, in_features), rng))
        self.bias: Optional[Parameter] = Parameter(init.zeros((out_features,))) if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input (N, {self.in_features}), got {x.shape}"
            )
        self._x = None if is_inference() else x
        ctx = current_mc_batch()
        slices = ctx.linear_slices(x.shape[0]) if ctx is not None else None
        if slices is not None:
            # Fused MC execution: one GEMM per Monte-Carlo sample slice.
            # BLAS results for a row depend on the GEMM's total row
            # count, so slicing keeps each sample's rows bit-identical
            # to the looped reference pass of the same chunk size.
            xs = x.reshape(slices, -1, self.in_features)
            y = np.matmul(xs, self.weight.data.T)
            y = y.reshape(x.shape[0], self.out_features)
        else:
            y = x @ self.weight.data.T
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        x = self._x
        self.weight.grad += grad_out.T @ x
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        self._x = None
        return grad_out @ self.weight.data

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None})")
