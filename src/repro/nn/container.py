"""Module containers: Sequential composition."""

from __future__ import annotations

from typing import Iterator, List, Union

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Run layers in order on forward, in reverse on backward.

    Layers may be addressed by integer index (``seq[2]``) and iterated.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        for layer in layers:
            if not isinstance(layer, Module):
                raise TypeError(
                    f"Sequential accepts Module instances, got "
                    f"{type(layer).__name__}")
        self.layers: List[Module] = list(layers)

    def append(self, layer: Module) -> "Sequential":
        """Add ``layer`` at the end; returns self for chaining."""
        if not isinstance(layer, Module):
            raise TypeError(
                f"Sequential accepts Module instances, got "
                f"{type(layer).__name__}")
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: Union[int, slice]) -> Union[Module, "Sequential"]:
        if isinstance(index, slice):
            return Sequential(*self.layers[index])
        return self.layers[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)
