"""Training fast-path context: per-layer workspaces for buffer reuse.

The training fast path (``TrainConfig.train_mode == "fast"``) runs the
same arithmetic as the reference trajectory but with two memory-level
differences:

* layers write their large intermediates (im2col columns, GEMM outputs,
  pooling maxima, activation masks) into buffers owned by a
  :class:`TrainWorkspace` instead of freshly allocated arrays — shapes
  are fixed within an epoch, so every step after the first reuses the
  previous step's memory and never touches the allocator for the
  activation-sized footprint;
* :class:`~repro.nn.pool.MaxPool2d` swaps its ``argmax``/``np.add.at``
  kernels for per-offset accumulation passes (see :mod:`repro.nn.pool`).

Both are bitwise-neutral for the model zoo: writing a result through
``out=`` produces the same floats as allocating it, and the per-offset
pooling kernels are pinned to the reference tie/ordering semantics by
``tests/test_train_fastpath.py``.  The only documented divergence is
MaxPool backward with *overlapping* windows (``stride < kernel_size``),
where colliding contributions are summed in per-offset instead of
flat-index order — an ulp-level reordering no zoo model exercises.

Like the inference/MC contexts in :mod:`repro.nn.inference`, the active
workspace is a module global (the library is single-threaded); it is
installed by :func:`fast_training` around a training loop and consulted
by the layers through :func:`current_workspace`.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.nn.module import DTYPE

_ACTIVE_WORKSPACE: Optional["TrainWorkspace"] = None


class TrainWorkspace:
    """A pool of named, shape-keyed scratch buffers for training steps.

    Buffers are keyed by ``(owner id, tag, shape, dtype)`` so a layer's
    forward/backward intermediates of every distinct geometry (e.g. the
    full batch and the smaller epoch-tail batch) persist side by side
    across steps.  Buffers are handed out *uninitialized* — callers
    must fully overwrite (or explicitly ``fill``) them.

    Ownership discipline: a buffer may be returned as a layer output or
    cached for the same step's backward, because by the time the owning
    layer runs again every downstream consumer of the previous step has
    finished.  Buffers must never outlive the training loop that
    installed the workspace.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def buffer(self, owner: object, tag: str, shape: Tuple[int, ...],
               dtype=DTYPE) -> np.ndarray:
        """An uninitialized reusable array of ``shape``/``dtype``."""
        key = (id(owner), tag, tuple(shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(tuple(shape), dtype=dtype)
            self._buffers[key] = buf
        return buf

    def zeros(self, owner: object, tag: str, shape: Tuple[int, ...],
              dtype=DTYPE) -> np.ndarray:
        """A reusable array of ``shape``/``dtype``, zeroed on every call."""
        buf = self.buffer(owner, tag, shape, dtype)
        buf.fill(0)
        return buf

    @property
    def num_buffers(self) -> int:
        """Number of distinct buffers currently pooled."""
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by the pooled buffers."""
        # Integer byte counts: order-free accumulation.
        return sum(buf.nbytes  # repro: allow[unordered-float-sum]
                   for buf in self._buffers.values())


def current_workspace() -> Optional[TrainWorkspace]:
    """The active :class:`TrainWorkspace`, or None on the reference path."""
    return _ACTIVE_WORKSPACE


def is_fast_training() -> bool:
    """True while a :func:`fast_training` context is active."""
    return _ACTIVE_WORKSPACE is not None


@contextlib.contextmanager
def fast_training(workspace: Optional[TrainWorkspace] = None):
    """Activate the training fast path for the duration of a loop.

    Args:
        workspace: buffer pool to (re)use; a fresh one by default.

    Yields the active workspace.  Nesting is rejected — a training loop
    owns its buffers exclusively.
    """
    global _ACTIVE_WORKSPACE
    if _ACTIVE_WORKSPACE is not None:
        raise RuntimeError("nested fast_training contexts are not supported")
    _ACTIVE_WORKSPACE = workspace if workspace is not None else TrainWorkspace()
    try:
        yield _ACTIVE_WORKSPACE
    finally:
        _ACTIVE_WORKSPACE = None


__all__ = [
    "TrainWorkspace",
    "current_workspace",
    "fast_training",
    "is_fast_training",
]
