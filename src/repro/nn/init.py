"""Weight initialization schemes (He / Xavier) for the substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import DTYPE
from repro.utils.rng import SeedLike, new_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for linear or conv weight shapes.

    Linear weights are ``(out, in)``; conv weights are
    ``(out_ch, in_ch, kh, kw)`` with receptive-field size folded in.
    """
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def he_normal(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Kaiming-He normal init, the default for ReLU networks."""
    rng = new_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(DTYPE)


def xavier_uniform(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Glorot-Xavier uniform init, suited to tanh/sigmoid heads."""
    rng = new_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=DTYPE)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one init (batch-norm scales)."""
    return np.ones(shape, dtype=DTYPE)
