"""Pooling layers: max, average, and global average pooling."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.fastpath import TrainWorkspace, current_workspace
from repro.nn.functional import conv_output_size, pad2d
from repro.nn.inference import is_inference
from repro.nn.module import DTYPE, Module
from repro.utils.validation import check_positive_int, check_shape_4d


def _windows(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Sliding windows ``(N, C, OH, OW, KH, KW)`` of a padded input."""
    win = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
    return win[:, :, ::stride, ::stride, :, :]


class MaxPool2d(Module):
    """Max pooling with square windows.

    Args:
        kernel_size: window side length.
        stride: window stride; defaults to ``kernel_size``.
        padding: symmetric zero padding (pads with ``-inf`` effectively,
            because padded zeros never win against real activations when
            inputs may be negative — we pad *after* recording shape and
            mask out padded positions on the backward path).
    """

    def __init__(self, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(
            stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._argmax: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._xp: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None

    def output_shape(self, h: int, w: int) -> Tuple[int, int]:
        """Spatial output size for an ``(h, w)`` input."""
        oh = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return oh, ow

    def _padded(self, x: np.ndarray) -> np.ndarray:
        if self.padding == 0:
            return x
        return np.pad(
            x, ((0, 0), (0, 0), (self.padding,) * 2, (self.padding,) * 2),
            mode="constant", constant_values=-np.inf)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = check_shape_4d(x, "x")
        self._argmax = None
        self._x_shape = None
        self._xp = None
        self._out = None
        if is_inference():
            return self._forward_inference(x)
        if current_workspace() is not None:
            return self._forward_fast(x)
        self._x_shape = x.shape
        xp = self._padded(x)
        win = _windows(xp, self.kernel_size, self.stride)
        n, c, oh, ow = win.shape[:4]
        flat = win.reshape(n, c, oh, ow, -1)
        self._argmax = flat.argmax(axis=-1)
        return np.ascontiguousarray(flat.max(axis=-1), dtype=DTYPE)

    def _forward_fast(self, x: np.ndarray) -> np.ndarray:
        """Training forward without the ``kernel^2``-sized window copy.

        Accumulates ``np.maximum`` over the ``kernel^2`` strided window
        offsets into a persistent buffer — the same sequential-reduce
        order as the reference path's ``flat.max``, so the output
        (including ``-0.0``/``+0.0`` tie resolution, which ``max``
        settles in favor of the *later* operand) is bitwise-identical.
        No argmax is materialized; the backward pass recovers the
        winning offsets from the cached padded input and output
        (first window position comparing equal to the maximum — exactly
        ``argmax``'s first-of-the-maxima semantics).
        """
        _, _, h, w = x.shape
        k = self.kernel_size
        stride = self.stride
        self._x_shape = x.shape
        xp = self._padded(x)
        oh = conv_output_size(h, k, stride, self.padding)
        ow = conv_output_size(w, k, stride, self.padding)
        ws = current_workspace()
        out = ws.buffer(self, "max", (x.shape[0], x.shape[1], oh, ow))
        for di in range(k):
            for dj in range(k):
                window = xp[:, :, di:di + stride * oh:stride,
                            dj:dj + stride * ow:stride]
                if di == 0 and dj == 0:
                    np.copyto(out, window)
                else:
                    np.maximum(out, window, out=out)
        self._argmax = None
        self._xp = xp
        self._out = out
        return out

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Max without the argmax indices or the window copy.

        Accumulates ``np.maximum`` over the ``kernel^2`` strided window
        offsets — each pass is one full-width vectorized elementwise op
        instead of a reduction over a tiny window axis.  ``max`` is
        exact under any evaluation order, so the result is
        bit-identical to the training-mode forward.
        """
        _, _, h, w = x.shape
        k = self.kernel_size
        stride = self.stride
        xp = self._padded(x)
        oh = conv_output_size(h, k, stride, self.padding)
        ow = conv_output_size(w, k, stride, self.padding)
        out: Optional[np.ndarray] = None
        for di in range(k):
            for dj in range(k):
                window = xp[:, :, di:di + stride * oh:stride,
                            dj:dj + stride * ow:stride]
                out = window if out is None else np.maximum(out, window)
        if k == 1:
            out = np.ascontiguousarray(out)
        return out.astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or (self._argmax is None
                                     and self._out is None):
            raise RuntimeError("backward called before forward")
        if self._out is not None:
            return self._backward_fast(grad_out)
        n, c, h, w = self._x_shape
        hp, wp = h + 2 * self.padding, w + 2 * self.padding
        grad_pad = np.zeros((n, c, hp, wp), dtype=DTYPE)
        oh, ow = grad_out.shape[2:]
        ki = self._argmax // self.kernel_size
        kj = self._argmax % self.kernel_size
        oi = np.arange(oh)[None, None, :, None] * self.stride
        oj = np.arange(ow)[None, None, None, :] * self.stride
        rows = (oi + ki).ravel()
        cols = (oj + kj).ravel()
        ni = np.repeat(np.arange(n), c * oh * ow)
        ci = np.tile(np.repeat(np.arange(c), oh * ow), n)
        np.add.at(grad_pad, (ni, ci, rows, cols), grad_out.ravel())
        if self.padding:
            grad_pad = grad_pad[:, :, self.padding:-self.padding,
                                self.padding:-self.padding]
        self._argmax = None
        self._x_shape = None
        return grad_pad

    def _backward_fast(self, grad_out: np.ndarray) -> np.ndarray:
        """Scatter-free backward: ``kernel^2`` vectorized offset adds.

        Replaces the reference path's ``np.add.at`` (an element-at-a-time
        scatter over four index arrays it must also materialize) with one
        masked add per window offset, in fixed row-major offset order.
        The winning offset of each window is recovered by comparing the
        cached padded input against the cached maxima, claimed
        first-match-wins — exactly the reference ``argmax``'s
        first-of-the-maxima semantics (``-0.0 == +0.0``, so sign-zero
        ties select the same offset too).  Windows that never overlap
        (``stride >= kernel_size`` — every zoo model) give each input
        cell at most one contribution, so the result is
        bitwise-identical to the scatter; overlapping windows sum
        colliding contributions in per-offset instead of flat-index
        order, a deterministic ulp-level reordering (gradcheck-verified).
        """
        n, c, h, w = self._x_shape
        k = self.kernel_size
        hp, wp = h + 2 * self.padding, w + 2 * self.padding
        # A throwaway pool covers the (test-only) case of a fast
        # forward whose backward runs outside the context.
        ws = current_workspace() or TrainWorkspace()
        out = self._out
        grad_pad = ws.zeros(self, "grad_pad", (n, c, hp, wp))
        oh, ow = grad_out.shape[2:]
        contrib = ws.buffer(self, "contrib", out.shape)
        sel = ws.buffer(self, "sel", out.shape, bool)
        unclaimed = ws.buffer(self, "unclaimed", out.shape, bool)
        unclaimed.fill(True)
        for di in range(k):
            for dj in range(k):
                window = self._xp[:, :, di:di + self.stride * oh:self.stride,
                                  dj:dj + self.stride * ow:self.stride]
                np.equal(window, out, out=sel)
                # First equal offset wins, matching argmax.
                np.logical_and(sel, unclaimed, out=sel)
                # sel is a subset of unclaimed, so xor clears exactly it.
                np.logical_xor(unclaimed, sel, out=unclaimed)
                np.multiply(grad_out, sel, out=contrib)
                grad_pad[:, :, di:di + self.stride * oh:self.stride,
                         dj:dj + self.stride * ow:self.stride] += contrib
        if self.padding:
            grad_pad = grad_pad[:, :, self.padding:-self.padding,
                                self.padding:-self.padding]
        self._x_shape = None
        self._xp = None
        self._out = None
        return grad_pad

    def __repr__(self) -> str:
        return (f"MaxPool2d(kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding})")


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = check_positive_int(kernel_size, "kernel_size")
        self.stride = check_positive_int(
            stride if stride is not None else kernel_size, "stride")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.padding = int(padding)
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = check_shape_4d(x, "x")
        # Parity with MaxPool2d/Conv2d: no backward state is retained
        # under inference mode.
        self._x_shape = None if is_inference() else x.shape
        xp = pad2d(x, self.padding)
        win = _windows(xp, self.kernel_size, self.stride)
        return np.ascontiguousarray(win.mean(axis=(-2, -1)), dtype=DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        hp, wp = h + 2 * self.padding, w + 2 * self.padding
        ws = current_workspace()
        if ws is not None:
            grad_pad = ws.zeros(self, "grad_pad", (n, c, hp, wp))
        else:
            grad_pad = np.zeros((n, c, hp, wp), dtype=DTYPE)
        oh, ow = grad_out.shape[2:]
        share = grad_out / (self.kernel_size * self.kernel_size)
        for ki in range(self.kernel_size):
            for kj in range(self.kernel_size):
                grad_pad[:, :, ki:ki + self.stride * oh:self.stride,
                         kj:kj + self.stride * ow:self.stride] += share
        if self.padding:
            grad_pad = grad_pad[:, :, self.padding:-self.padding,
                                self.padding:-self.padding]
        self._x_shape = None
        return grad_pad

    def __repr__(self) -> str:
        return (f"AvgPool2d(kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding})")


class GlobalAvgPool2d(Module):
    """Average over all spatial positions, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = check_shape_4d(x, "x")
        # Parity with MaxPool2d/Conv2d: no backward state is retained
        # under inference mode.
        self._x_shape = None if is_inference() else x.shape
        return np.ascontiguousarray(x.mean(axis=(2, 3)), dtype=DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        grad = np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w))
        self._x_shape = None
        return np.ascontiguousarray(grad, dtype=DTYPE)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
