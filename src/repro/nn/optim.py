"""Optimizers and learning-rate schedules for the numpy substrate.

Both optimizers support two bit-identical execution paths selected at
construction time:

* the **reference** path (default) computes every update through fresh
  intermediate arrays, exactly mirroring the textbook update equations;
* the **fused** path (``fused=True``, used by the training fast path)
  performs the same floating-point operations in the same order but
  in place — moments live in persistent buffers and every temporary is
  written into a per-parameter scratch slab with ``np.multiply/add/...
  (..., out=)`` — so a step allocates nothing.

Optimizer state is keyed by *parameter index* (position in the
``params`` list), never by ``id(p)``: an ``id``-keyed dict can silently
attach a freed parameter's stale moments to an unrelated new parameter
whose allocation reused the address.  Index keying also gives the state
a stable serialized form — :meth:`Optimizer.state_dict` /
:meth:`Optimizer.load_state_dict` round-trip it as a flat
``name -> array`` mapping, which is what epoch-granular training
checkpoints persist.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.nn.module import DTYPE, Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects.

    Args:
        params: parameters to optimize; their order defines the state
            indexing used by :meth:`state_dict`.
        lr: learning rate.
        fused: run the in-place fused update path (bit-identical to the
            reference path; see the module docstring).
    """

    def __init__(self, params: List[Parameter], lr: float, *,
                 fused: bool = False) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.fused = bool(fused)
        self._scratch: Dict[tuple, np.ndarray] = {}

    def _scratch_for(self, index: int, tag: str, p: Parameter) -> np.ndarray:
        """A persistent uninitialized scratch array shaped like ``p``."""
        key = (index, tag)
        buf = self._scratch.get(key)
        if buf is None or buf.shape != p.data.shape:
            buf = np.empty_like(p.data)
            self._scratch[key] = buf
        return buf

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero the gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    # ------------------------------------------------------------------
    # Serialization (epoch-granular training checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``name -> array`` view of the optimizer state.

        Keys are ``<slot>.<param_index>`` (e.g. ``m.3``) plus scalar
        counters as 0-d arrays; :meth:`load_state_dict` inverts it
        exactly, and the mapping stores directly into one ``.npz``.
        """
        return {}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`.

        The optimizer must have been constructed over the same
        parameter list (same order and shapes).
        """
        if state:
            raise KeyError(
                f"unexpected keys in optimizer state: {sorted(state)}")

    def _check_moment(self, key: str, value: np.ndarray) -> np.ndarray:
        slot, _, index_text = key.partition(".")
        try:
            index = int(index_text)
        except ValueError:
            raise KeyError(f"malformed optimizer state key {key!r}") from None
        if not 0 <= index < len(self.params):
            raise KeyError(
                f"optimizer state key {key!r} is out of range for "
                f"{len(self.params)} parameter(s)")
        expected = self.params[index].data.shape
        value = np.ascontiguousarray(value, dtype=DTYPE)
        if value.shape != expected:
            raise ValueError(
                f"shape mismatch for optimizer state {key!r}: "
                f"expected {expected}, got {value.shape}")
        return value


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    Args:
        params: parameters to optimize.
        lr: learning rate.
        momentum: classical momentum factor (0 disables).
        weight_decay: decoupled L2 coefficient applied to the gradient.
        nesterov: use Nesterov lookahead momentum.
        fused: allocation-free in-place update path (bit-identical).
    """

    def __init__(self, params: List[Parameter], lr: float = 0.01, *,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False, fused: bool = False) -> None:
        super().__init__(params, lr, fused=fused)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        if self.fused:
            self._step_fused()
            return
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + g
                self._velocity[i] = v
                g = g + self.momentum * v if self.nesterov else v
            p.data -= (self.lr * g).astype(DTYPE)

    def _step_fused(self) -> None:
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                decayed = self._scratch_for(i, "g", p)
                np.multiply(p.data, self.weight_decay, out=decayed)
                np.add(decayed, g, out=decayed)
                g = decayed
            if self.momentum:
                v = self._velocity.get(i)
                if v is None or v.shape != p.data.shape:
                    v = np.zeros_like(p.data)
                    self._velocity[i] = v
                np.multiply(v, self.momentum, out=v)
                np.add(v, g, out=v)
                if self.nesterov:
                    update = self._scratch_for(i, "u", p)
                    np.multiply(v, self.momentum, out=update)
                    np.add(update, g, out=update)
                    g = update
                else:
                    g = v
            scaled = self._scratch_for(i, "s", p)
            np.multiply(g, self.lr, out=scaled)
            np.subtract(p.data, scaled, out=p.data)

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy()
                for i, v in sorted(self._velocity.items())}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        velocity: Dict[int, np.ndarray] = {}
        for key, value in state.items():
            if not key.startswith("velocity."):
                raise KeyError(f"unexpected key in SGD state: {key!r}")
            velocity[int(key.partition(".")[2])] = self._check_moment(
                key, value).copy()
        self._velocity = velocity


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: List[Parameter], lr: float = 1e-3, *,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, fused: bool = False) -> None:
        super().__init__(params, lr, fused=fused)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        if self.fused:
            self._step_fused()
            return
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g)
            self._m[i] = m
            self._v[i] = v
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.data -= (self.lr * update).astype(DTYPE)

    def _step_fused(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for i, p in enumerate(self.params):
            g = p.grad
            if self.weight_decay:
                decayed = self._scratch_for(i, "g", p)
                np.multiply(p.data, self.weight_decay, out=decayed)
                np.add(decayed, g, out=decayed)
                g = decayed
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None or m.shape != p.data.shape:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[i] = m
                self._v[i] = v
            a = self._scratch_for(i, "a", p)
            b = self._scratch_for(i, "b", p)
            # m <- b1 * m + (1 - b1) * g          (in place)
            np.multiply(m, b1, out=m)
            np.multiply(g, 1 - b1, out=a)
            np.add(m, a, out=m)
            # v <- b2 * v + (1 - b2) * g^2        (in place)
            np.multiply(v, b2, out=v)
            np.multiply(g, g, out=a)
            np.multiply(a, 1 - b2, out=a)
            np.add(v, a, out=v)
            # update = (m / bc1) / (sqrt(v / bc2) + eps)
            np.divide(v, bc2, out=a)
            np.sqrt(a, out=a)
            np.add(a, self.eps, out=a)
            np.divide(m, bc1, out=b)
            np.divide(b, a, out=b)
            np.multiply(b, self.lr, out=b)
            np.subtract(p.data, b, out=p.data)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {"t": np.asarray(self._t, dtype=np.int64)}
        for i, m in sorted(self._m.items()):
            state[f"m.{i}"] = m.copy()
        for i, v in sorted(self._v.items()):
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "t" not in state:
            raise KeyError("Adam state is missing the step counter 't'")
        m: Dict[int, np.ndarray] = {}
        v: Dict[int, np.ndarray] = {}
        for key, value in state.items():
            if key == "t":
                continue
            if key.startswith("m."):
                m[int(key.partition(".")[2])] = self._check_moment(
                    key, value).copy()
            elif key.startswith("v."):
                v[int(key.partition(".")[2])] = self._check_moment(
                    key, value).copy()
            else:
                raise KeyError(f"unexpected key in Adam state: {key!r}")
        if sorted(m) != sorted(v):
            raise KeyError("Adam state has mismatched m/v moment keys")
        self._t = int(np.asarray(state["t"]))
        self._m = m
        self._v = v


class LRScheduler:
    """Base class for learning-rate schedules over an optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine-annealed schedule from ``base_lr`` down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self, epoch: int) -> float:
        frac = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * frac))
