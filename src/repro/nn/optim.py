"""Optimizers and learning-rate schedules for the numpy substrate."""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.nn.module import DTYPE, Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects."""

    def __init__(self, params: List[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero the gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay.

    Args:
        params: parameters to optimize.
        lr: learning rate.
        momentum: classical momentum factor (0 disables).
        weight_decay: decoupled L2 coefficient applied to the gradient.
        nesterov: use Nesterov lookahead momentum.
    """

    def __init__(self, params: List[Parameter], lr: float = 0.01, *,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False) -> None:
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + g
                self._velocity[id(p)] = v
                g = g + self.momentum * v if self.nesterov else v
            p.data -= (self.lr * g).astype(DTYPE)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: List[Parameter], lr: float = 1e-3, *,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.betas = (float(b1), float(b2))
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bc1 = 1.0 - b1 ** self._t
        bc2 = 1.0 - b2 ** self._t
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g)
            self._m[id(p)] = m
            self._v[id(p)] = v
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            p.data -= (self.lr * update).astype(DTYPE)


class LRScheduler:
    """Base class for learning-rate schedules over an optimizer."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the new learning rate."""
        self.epoch += 1
        lr = self.get_lr(self.epoch)
        self.optimizer.lr = lr
        return lr

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine-annealed schedule from ``base_lr`` down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = int(t_max)
        self.eta_min = float(eta_min)

    def get_lr(self, epoch: int) -> float:
        frac = min(epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * frac))
