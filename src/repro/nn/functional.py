"""Stateless numerical kernels shared by the layer implementations.

The convolution kernels use the im2col/col2im formulation: a convolution
is lowered to one big matrix multiply, which is the same lowering most
HLS dataflow accelerators (and hls4ml) use, so the hardware model in
:mod:`repro.hw` can reason about the identical operation counts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.module import DTYPE


def pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing spatial dimensions of ``(N, C, H, W)``."""
    if padding == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size {out} for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int,
           out: np.ndarray = None) -> np.ndarray:
    """Lower sliding windows of ``x`` to columns.

    Args:
        x: input of shape ``(N, C, H, W)``.
        kernel: square kernel size.
        stride: window stride.
        padding: symmetric zero padding.
        out: optional preallocated ``(N, C*kernel*kernel, OH*OW)``
            destination (training fast path); the gather is written in
            place instead of allocating, with bitwise-identical values.

    Returns:
        Array of shape ``(N, C * kernel * kernel, OH * OW)`` where each
        column holds one receptive field, flattened channel-major.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, padding)
    ow = conv_output_size(w, kernel, stride, padding)
    xp = pad2d(x, padding)
    # windows: (N, C, OH, OW, KH, KW)
    windows = np.lib.stride_tricks.sliding_window_view(xp, (kernel, kernel), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # -> (N, C, KH, KW, OH, OW) -> (N, C*KH*KW, OH*OW)
    cols = windows.transpose(0, 1, 4, 5, 2, 3)
    if out is None:
        return np.ascontiguousarray(
            cols.reshape(n, c * kernel * kernel, oh * ow), dtype=DTYPE)
    np.copyto(out.reshape(n, c, kernel, kernel, oh, ow), cols)
    return out


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int,
           stride: int, padding: int, out: np.ndarray = None) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image form.

    Contributions are accumulated per ``(ki, kj)`` window offset in a
    fixed row-major order, so the summation order — and therefore the
    floats — is identical whether ``out`` is freshly allocated or a
    reused workspace buffer.

    Args:
        cols: array of shape ``(N, C * kernel * kernel, OH * OW)``.
        x_shape: original ``(N, C, H, W)`` input shape.
        kernel, stride, padding: the window sweep parameters used forward.
        out: optional preallocated padded ``(N, C, H+2p, W+2p)``
            accumulator (training fast path); zeroed, accumulated into
            in place, and sliced for the return value.

    Returns:
        Array of shape ``x_shape`` with overlapping contributions summed
        (a view into ``out`` when padding is non-zero and ``out`` given).
    """
    n, c, h, w = x_shape
    oh = conv_output_size(h, kernel, stride, padding)
    ow = conv_output_size(w, kernel, stride, padding)
    hp, wp = h + 2 * padding, w + 2 * padding
    if out is None:
        out = np.zeros((n, c, hp, wp), dtype=DTYPE)
    else:
        if out.shape != (n, c, hp, wp):
            raise ValueError(
                f"col2im out buffer has shape {out.shape}, "
                f"expected {(n, c, hp, wp)}")
        out.fill(0.0)
    cols6 = cols.reshape(n, c, kernel, kernel, oh, ow)
    for ki in range(kernel):
        i_end = ki + stride * oh
        for kj in range(kernel):
            j_end = kj + stride * ow
            out[:, :, ki:i_end:stride, kj:j_end:stride] += cols6[:, :, ki, kj]
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    z = logits - np.max(logits, axis=axis, keepdims=True)
    ez = np.exp(z)
    return ez / np.sum(ez, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    z = logits - np.max(logits, axis=axis, keepdims=True)
    return z - np.log(np.sum(np.exp(z), axis=axis, keepdims=True))


def check_labels(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Validate integer class labels: 1-D and within ``[0, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), "
            f"got range [{labels.min()}, {labels.max()}]"
        )
    return labels


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Encode integer ``labels`` of shape ``(N,)`` as ``(N, num_classes)``."""
    labels = check_labels(labels, num_classes)
    out = np.zeros((labels.shape[0], num_classes), dtype=DTYPE)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
