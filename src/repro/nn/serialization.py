"""Checkpoint save/load for module state dicts (npz container)."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_checkpoint(module: Module, path: str) -> None:
    """Serialize ``module.state_dict()`` to an ``.npz`` file at ``path``."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_checkpoint(module: Module, path: str) -> Module:
    """Load an ``.npz`` checkpoint into ``module`` in place and return it."""
    with np.load(path) as data:
        state: Dict[str, np.ndarray] = {key: data[key] for key in data.files}
    module.load_state_dict(state)
    return module
