"""Command-line interface: ``python -m repro.cli <command>``.

Three commands cover the common workflows without writing a script:

* ``search`` — run the four-phase flow and print the searched
  configuration(s) per aim;
* ``generate`` — emit the HLS project for a configuration (searched or
  user-specified);
* ``report`` — print the csynth-style report of a configuration.

Examples::

    python -m repro.cli search --model lenet_slim --dataset mnist_like \\
        --image-size 16 --aims accuracy latency
    python -m repro.cli generate --config B-K-M --outdir gen/
    python -m repro.cli report --model resnet18 --config M-M-M-M
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.flow import DropoutSearchFlow, FlowSpec
from repro.search import EvolutionConfig, TrainConfig, get_aim
from repro.search.space import config_from_string


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_flow_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="lenet_slim",
                       help="model zoo name (default: lenet_slim)")
        p.add_argument("--dataset", default="mnist_like",
                       help="synthetic dataset name")
        p.add_argument("--image-size", type=int, default=16,
                       help="square input side (default: 16)")
        p.add_argument("--dataset-size", type=int, default=700,
                       help="number of synthesized images")
        p.add_argument("--seed", type=int, default=0,
                       help="master seed")
        p.add_argument("--epochs", type=int, default=15,
                       help="supernet training epochs")

    p_search = sub.add_parser(
        "search", help="run the four-phase dropout search")
    add_flow_args(p_search)
    p_search.add_argument(
        "--aims", nargs="+",
        default=["accuracy", "ece", "ape", "latency"],
        help="aim presets to search (default: all four)")
    p_search.add_argument("--population", type=int, default=12)
    p_search.add_argument("--generations", type=int, default=6)

    p_generate = sub.add_parser(
        "generate", help="emit an HLS project for a configuration")
    add_flow_args(p_generate)
    p_generate.add_argument("--config", required=True,
                            help="dropout configuration, e.g. B-K-M")
    p_generate.add_argument("--outdir", default="generated_accelerator",
                            help="output directory")
    p_generate.add_argument("--project-name", default="myproject")

    p_report = sub.add_parser(
        "report", help="print the synthesis report of a configuration")
    add_flow_args(p_report)
    p_report.add_argument("--config", required=True,
                          help="dropout configuration, e.g. M-M-M")
    return parser


def _make_flow(args: argparse.Namespace) -> DropoutSearchFlow:
    flow = DropoutSearchFlow(FlowSpec(
        model=args.model, dataset=args.dataset,
        image_size=args.image_size, dataset_size=args.dataset_size,
        seed=args.seed))
    flow.specify()
    return flow


def cmd_search(args: argparse.Namespace) -> int:
    flow = _make_flow(args)
    print(f"search space: {flow.state.space}")
    log = flow.train(TrainConfig(epochs=args.epochs))
    print(f"supernet trained: {log.steps} steps, "
          f"{log.wall_seconds:.1f}s")
    evolution = EvolutionConfig(population_size=args.population,
                                generations=args.generations)
    for aim in args.aims:
        result = flow.search(aim, evolution=evolution)
        best = result.best
        print(f"{get_aim(aim).name:<18} {best.config_string:<12} "
              f"acc={best.report.accuracy_percent:5.1f}% "
              f"ECE={best.report.ece_percent:5.2f}% "
              f"aPE={best.report.ape:5.3f} "
              f"lat={best.latency_ms:.3f}ms")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    flow = _make_flow(args)
    config = config_from_string(args.config)
    flow.state.space.validate(config)
    design, project = flow.generate(config, outdir=args.outdir,
                                    project_name=args.project_name)
    print(f"emitted {len(project.files)} files under {args.outdir}/")
    print(design.report.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    flow = _make_flow(args)
    config = config_from_string(args.config)
    flow.state.space.validate(config)
    design, _ = flow.generate(config)
    print(design.report.render())
    return 0


_COMMANDS = {
    "search": cmd_search,
    "generate": cmd_generate,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
