"""Command-line interface: ``python -m repro.cli <command>`` (or the
installed ``repro`` console script).

Built on the :mod:`repro.api` experiment layer.  Five commands:

* ``run`` — execute a declarative experiment spec end to end (all
  phases, every aim in the spec), persisting JSON artifacts through the
  :class:`~repro.api.ArtifactStore`; re-running the same spec against
  the same store resumes from the artifacts instead of retraining;
  ``--export-deployment`` additionally freezes the winner into a
  serving deployment directory;
* ``serve`` — drive the async micro-batching uncertainty service over
  an exported deployment (``--smoke`` answers one request and exits;
  ``--backend fixed`` serves through the compiled integer kernel;
  ``--replicas N`` shards fused batches across N forked workers;
  ``--deadline-ms``/``--fault-plan`` exercise the degradation ladder);
* ``chaos`` — soak the serving stack under a deterministic fault plan
  and gate on the resilience invariants: no dropped futures,
  byte-identity to fault-free serving, honest shed accounting and an
  identical fired-event log on every rerun (exit 1 on any violation);
* ``compile`` — lower a deployment to the executable fixed-point
  kernel, statically certify its accumulators against int64 overflow,
  and print its measured float-vs-fixed fidelity report;
* ``verify-kernel`` — re-derive a compiled kernel's overflow
  certificate from the persisted artifact bytes and cross-check the
  stored copy (exit 1 on wrap-possible or a stale certificate);
* ``lint`` — run the determinism/fork-safety linter over source trees
  (exit 1 on findings);
* ``search`` — ad-hoc four-phase search from flat flags;
* ``generate`` — emit the HLS project for a configuration;
* ``report`` — print the csynth-style report of a configuration.

Examples::

    python -m repro.cli run --spec experiment.json --store runs/ \\
        --export-deployment deploy/
    python -m repro.cli serve --deployment deploy/ --smoke
    python -m repro.cli compile --deployment deploy/
    python -m repro.cli verify-kernel --deployment deploy/
    python -m repro.cli lint src/
    python -m repro.cli serve --deployment deploy/ --backend fixed
    python -m repro.cli serve --deployment deploy/ --replicas 4
    python -m repro.cli chaos --deployment deploy/ --replicas 2
    python -m repro.cli chaos --deployment deploy/ --emit-plan plan.json
    python -m repro.cli serve --deployment deploy/ --fault-plan plan.json
    python -m repro.cli search --model lenet_slim --dataset mnist_like \\
        --image-size 16 --aims accuracy latency
    python -m repro.cli generate --config B-K-M --outdir gen/
    python -m repro.cli report --model resnet18 --config M-M-M-M
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys
from typing import List, Optional

import numpy as np

from repro.api import (
    SEARCH_ALGORITHMS,
    ArtifactError,
    EvolutionSpec,
    ExperimentSpec,
    FidelityRungSpec,
    Pipeline,
    PipelineContext,
    Runner,
    SearchSpec,
    SearchStage,
    SpecError,
    SpecifyStage,
    TrainSpec,
    TrainStage,
    build_design,
)
from repro.search.space import config_from_string, config_to_string


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_flow_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", default="lenet_slim",
                       help="model zoo name (default: lenet_slim)")
        p.add_argument("--dataset", default="mnist_like",
                       help="synthetic dataset name")
        p.add_argument("--image-size", type=int, default=16,
                       help="square input side (default: 16)")
        p.add_argument("--dataset-size", type=int, default=700,
                       help="number of synthesized images")
        p.add_argument("--seed", type=int, default=0,
                       help="master seed")
        p.add_argument("--epochs", type=int, default=15,
                       help="supernet training epochs")

    p_run = sub.add_parser(
        "run", help="run a declarative experiment spec (JSON file)")
    p_run.add_argument("--spec", required=True,
                       help="path to an ExperimentSpec JSON file")
    p_run.add_argument("--store", default="runs",
                       help="artifact-store root directory (default: runs)")
    p_run.add_argument("--no-store", action="store_true",
                       help="run fully in memory (no artifacts, no resume)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="evaluation worker processes (overrides the "
                            "spec's num_workers; results are bit-identical "
                            "for every worker count)")
    p_run.add_argument("--train-mode", choices=["fast", "reference"],
                       default=None,
                       help="training execution path (overrides the spec's "
                            "train.train_mode; the paths are bit-identical, "
                            "fast is the default)")
    p_run.add_argument("--algorithm", choices=list(SEARCH_ALGORITHMS),
                       default=None,
                       help="search loop (overrides the spec's "
                            "search.algorithm): lockstep generations or "
                            "the steady-state async_ea")
    p_run.add_argument("--json", action="store_true", dest="as_json",
                       help="print the full result digest as JSON")
    p_run.add_argument("--export-deployment", default=None, metavar="DIR",
                       help="after the run, freeze the generation "
                            "target into a serving deployment directory")

    p_serve = sub.add_parser(
        "serve", help="drive the micro-batching uncertainty service")
    source = p_serve.add_mutually_exclusive_group(required=True)
    source.add_argument("--deployment", metavar="DIR",
                        help="deployment directory (from "
                             "`run --export-deployment`)")
    source.add_argument("--run-dir", metavar="DIR",
                        help="finished run directory to deploy directly "
                             "(<store>/<run_id>)")
    p_serve.add_argument("--aim", default=None,
                         help="searched aim to deploy (with --run-dir)")
    p_serve.add_argument("--smoke", action="store_true",
                         help="one-shot mode: answer a single request, "
                              "print the posterior and exit")
    p_serve.add_argument("--requests", type=int, default=8,
                         help="concurrent demo requests (default: 8)")
    p_serve.add_argument("--batch-rows", type=int, default=32,
                         help="rows per fused micro-batch (default: 32)")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="micro-batching admission wait (default: 2)")
    p_serve.add_argument("--samples", type=int, default=None,
                         help="Monte-Carlo passes T (default: the "
                              "deployment spec's mc_samples)")
    p_serve.add_argument("--seed", type=int, default=0,
                         help="seed of the synthetic demo requests")
    p_serve.add_argument("--backend", choices=["float", "fixed"],
                         default="float",
                         help="serving backend: float MC engines or the "
                              "compiled fixed-point integer kernel "
                              "(default: float)")
    p_serve.add_argument("--replicas", type=int, default=0,
                         help="forked worker processes sharding each "
                              "fused batch (0 = serve inline; responses "
                              "are byte-identical either way)")
    p_serve.add_argument("--replica-timeout-s", type=float, default=30.0,
                         help="per-shard timeout before a replica is "
                              "declared wedged and respawned "
                              "(default: 30)")
    p_serve.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline budget; requests "
                              "still queued past it are shed with "
                              "DeadlineExceeded (default: none)")
    p_serve.add_argument("--fault-plan", default=None, metavar="FILE",
                         help="JSON fault plan (see `repro chaos "
                              "--emit-plan`) to replay against the "
                              "serving stack while it runs")

    p_chaos = sub.add_parser(
        "chaos",
        help="soak the serving stack under a deterministic fault plan")
    chsource = p_chaos.add_mutually_exclusive_group(required=True)
    chsource.add_argument("--deployment", metavar="DIR",
                          help="deployment directory (from "
                               "`run --export-deployment`)")
    chsource.add_argument("--run-dir", metavar="DIR",
                          help="finished run directory to deploy directly "
                               "(<store>/<run_id>)")
    p_chaos.add_argument("--aim", default=None,
                         help="searched aim to deploy (with --run-dir)")
    p_chaos.add_argument("--plan", default=None, metavar="FILE",
                         help="JSON fault plan to replay (default: the "
                              "pinned standard plan)")
    p_chaos.add_argument("--plan-seed", type=int, default=0,
                         help="seed of the standard/generated plan "
                              "(ignored with --plan; default: 0)")
    p_chaos.add_argument("--generate-plan", action="store_true",
                         help="soak under a seed-generated plan instead "
                              "of the pinned standard plan")
    p_chaos.add_argument("--emit-plan", default=None, metavar="FILE",
                         help="write the soak's fault plan as JSON and "
                              "exit without serving")
    p_chaos.add_argument("--requests", type=int, default=24,
                         help="concurrent soak requests (default: 24)")
    p_chaos.add_argument("--rows", type=int, default=4,
                         help="rows per request = rows per fused batch "
                              "(default: 4)")
    p_chaos.add_argument("--replicas", type=int, default=2,
                         help="forked workers behind the batcher "
                              "(default: 2)")
    p_chaos.add_argument("--backend", choices=["float", "fixed"],
                         default="float",
                         help="serving backend under test (default: float)")
    p_chaos.add_argument("--samples", type=int, default=None,
                         help="Monte-Carlo passes T (default: the "
                              "deployment spec's mc_samples)")
    p_chaos.add_argument("--deadline-ms", type=float, default=None,
                         help="per-request deadline budget for the soak "
                              "traffic (default: none)")
    p_chaos.add_argument("--replica-timeout-s", type=float, default=2.0,
                         help="per-shard timeout; small so wedged "
                              "replicas recover promptly (default: 2)")
    p_chaos.add_argument("--timeout-s", type=float, default=120.0,
                         help="wall bound on the request wave; futures "
                              "unresolved past it count as dropped "
                              "(default: 120)")
    p_chaos.add_argument("--repeat", type=int, default=2,
                         help="soak runs; fired-event logs must be "
                              "identical across all of them (default: 2)")
    p_chaos.add_argument("--json", action="store_true", dest="as_json",
                         help="print the chaos report as JSON")

    p_compile = sub.add_parser(
        "compile",
        help="lower a deployment to an executable fixed-point kernel")
    csource = p_compile.add_mutually_exclusive_group(required=True)
    csource.add_argument("--deployment", metavar="DIR",
                         help="deployment directory (from "
                              "`run --export-deployment`)")
    csource.add_argument("--run-dir", metavar="DIR",
                         help="finished run directory to compile directly "
                              "(<store>/<run_id>)")
    p_compile.add_argument("--aim", default=None,
                           help="searched aim to compile (with --run-dir)")
    p_compile.add_argument("--out", default=None, metavar="DIR",
                           help="artifact directory (default: the "
                                "deployment directory itself, or "
                                "<run-dir>/compiled)")
    p_compile.add_argument("--calibration-rows", type=int, default=None,
                           help="validation rows for range calibration")
    p_compile.add_argument("--fidelity-rows", type=int, default=None,
                           help="validation rows for the fidelity report")
    p_compile.add_argument("--samples", type=int, default=None,
                           help="Monte-Carlo passes T (default: the "
                                "deployment spec's mc_samples)")
    p_compile.add_argument("--force", action="store_true",
                           help="recompile even if artifacts exist")
    p_compile.add_argument("--allow-unsafe", action="store_true",
                           help="persist the kernel even when the overflow "
                                "certificate is wrap-possible")
    p_compile.add_argument("--json", action="store_true", dest="as_json",
                           help="print the fidelity report as JSON")

    p_verify = sub.add_parser(
        "verify-kernel",
        help="re-derive and cross-check a compiled kernel's overflow "
             "certificate")
    vsource = p_verify.add_mutually_exclusive_group(required=True)
    vsource.add_argument("--deployment", metavar="DIR",
                         help="deployment directory holding `repro "
                              "compile` artifacts")
    vsource.add_argument("--run-dir", metavar="DIR",
                         help="finished run directory (checks "
                              "<run-dir>/compiled)")
    p_verify.add_argument("--aim", default=None,
                          help="searched aim of the run (with --run-dir)")
    p_verify.add_argument("--out", default=None, metavar="DIR",
                          help="artifact directory to check (default: the "
                               "deployment directory, or <run-dir>/compiled)")
    p_verify.add_argument("--json", action="store_true", dest="as_json",
                          help="print the certificate as JSON")

    p_lint = sub.add_parser(
        "lint", help="run the determinism/fork-safety linter")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--json", action="store_true", dest="as_json",
                        help="print the findings as JSON")

    p_search = sub.add_parser(
        "search", help="run the four-phase dropout search")
    add_flow_args(p_search)
    p_search.add_argument(
        "--aims", nargs="+",
        default=["accuracy", "ece", "ape", "latency"],
        help="aim presets to search (default: all four)")
    p_search.add_argument("--population", type=int, default=12)
    p_search.add_argument("--generations", type=int, default=6)
    p_search.add_argument(
        "--workers", type=int, default=1,
        help="evaluation worker processes (default: 1; results are "
             "bit-identical for every worker count)")
    p_search.add_argument(
        "--train-mode", choices=["fast", "reference"], default="fast",
        help="training execution path (bit-identical; default: fast)")
    p_search.add_argument(
        "--algorithm", choices=list(SEARCH_ALGORITHMS),
        default="lockstep",
        help="search loop: lockstep generations (default) or the "
             "steady-state async_ea")
    p_search.add_argument(
        "--rung", action="append", default=None, metavar="T:FRAC[:KEEP]",
        help="add one async_ea screening rung: T Monte-Carlo passes "
             "(0 = full T) on a FRAC validation subset, keeping the "
             "top KEEP fraction (default 0.5); repeatable, ordered "
             "cheapest first")
    p_search.add_argument(
        "--store", default=None,
        help="optional artifact-store root; enables resume")

    p_generate = sub.add_parser(
        "generate", help="emit an HLS project for a configuration")
    add_flow_args(p_generate)
    p_generate.add_argument("--config", required=True,
                            help="dropout configuration, e.g. B-K-M")
    p_generate.add_argument("--outdir", default="generated_accelerator",
                            help="output directory")
    p_generate.add_argument("--project-name", default="myproject")

    p_report = sub.add_parser(
        "report", help="print the synthesis report of a configuration")
    add_flow_args(p_report)
    p_report.add_argument("--config", required=True,
                          help="dropout configuration, e.g. M-M-M")
    return parser


def _parse_rung(text: str) -> FidelityRungSpec:
    """Parse one ``--rung T:FRAC[:KEEP]`` flag (T = 0 keeps full T)."""
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise SpecError(f"--rung expects T:FRAC[:KEEP], got {text!r}")
    try:
        mc_samples = int(parts[0])
        data_fraction = float(parts[1])
        keep_fraction = float(parts[2]) if len(parts) == 3 else 0.5
    except ValueError as exc:
        raise SpecError(f"invalid --rung {text!r}: {exc}") from exc
    return FidelityRungSpec(
        mc_samples=None if mc_samples == 0 else mc_samples,
        data_fraction=data_fraction,
        keep_fraction=keep_fraction)


def _spec_from_args(args: argparse.Namespace, *,
                    aims: Optional[List[str]] = None,
                    population: Optional[int] = None,
                    generations: Optional[int] = None) -> ExperimentSpec:
    """Build a declarative spec from the flat legacy-style flags."""
    evolution = EvolutionSpec()
    if population is not None or generations is not None:
        evolution = EvolutionSpec(
            population_size=population if population is not None else 16,
            generations=generations if generations is not None else 8)
    algorithm = getattr(args, "algorithm", None) or "lockstep"
    rungs = tuple(_parse_rung(text)
                  for text in (getattr(args, "rung", None) or ()))
    if rungs and algorithm != "async_ea":
        raise SpecError("--rung requires --algorithm async_ea")
    return ExperimentSpec(
        name=f"cli-{args.model}",
        model=args.model, dataset=args.dataset,
        image_size=args.image_size, dataset_size=args.dataset_size,
        seed=args.seed,
        num_workers=(args.workers if getattr(args, "workers", None)
                     is not None else 1),
        train=TrainSpec(epochs=args.epochs,
                        train_mode=getattr(args, "train_mode", None)
                        or "fast"),
        search=SearchSpec(aims=tuple(aims) if aims else ("accuracy",),
                          evolution=evolution,
                          algorithm=algorithm,
                          fidelity_rungs=rungs))


def _specified_context(args: argparse.Namespace) -> PipelineContext:
    """A context with Phase 1 executed (no training) for codegen paths."""
    ctx = PipelineContext(spec=_spec_from_args(args))
    SpecifyStage().execute(ctx)
    return ctx


def _parse_config(ctx: PipelineContext, text: str):
    """Parse and validate a Table-2 config string against the space."""
    try:
        return ctx.space.validate(config_from_string(text))
    except KeyError as exc:  # unknown design letter
        raise ValueError(exc.args[0] if exc.args else str(exc)) from exc


def _print_summary_rows(rows) -> None:
    for row in rows:
        seconds = row["search_seconds"]
        cost = f" {seconds:6.1f}s" if seconds is not None else ""
        print(f"{row['aim']:<18} {row['config']:<12} "
              f"acc={row['accuracy_pct']:5.1f}% "
              f"ECE={row['ece_pct']:5.2f}% "
              f"aPE={row['ape_nats']:5.3f} "
              f"lat={row['latency_ms']:.3f}ms{cost} "
              f"evals={row['cache_misses']}+{row['cache_hits']}cached")


def cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    if args.workers is not None:
        # num_workers is fingerprint-excluded (the pooled path is
        # bit-identical to serial), so the override still resumes the
        # spec's persisted artifacts.
        spec = spec.with_updates(num_workers=args.workers)
    if args.train_mode is not None:
        # train_mode is fingerprint-excluded too (the fast path is
        # bit-identical to the reference trajectory), so switching
        # modes also keeps resuming persisted artifacts.
        spec = spec.with_updates(train=dataclasses.replace(
            spec.train, train_mode=args.train_mode))
    if args.algorithm is not None and args.algorithm != spec.search.algorithm:
        # The algorithm changes the search trajectory, so — unlike the
        # worker/train-mode overrides — the updated spec resumes into
        # its own artifact namespace (a fresh fingerprint).
        spec = spec.with_updates(search=dataclasses.replace(
            spec.search, algorithm=args.algorithm))
    runner = Runner(spec,
                    store_root=None if args.no_store else args.store)
    result = runner.run()
    deployment = None
    if args.export_deployment:
        deployment = runner.export_deployment(args.export_deployment)
    if args.as_json:
        digest = result.to_dict()
        if deployment is not None:
            digest["deployment"] = {
                "path": args.export_deployment,
                "config": config_to_string(deployment.config),
                "aim": deployment.aim,
                "serve_seed": deployment.serve_seed,
            }
        print(json.dumps(digest, indent=2, sort_keys=True))
        return 0
    print(f"run id: {result.run_id}")
    if result.store_root:
        print(f"artifacts: {result.store_root}")
    if deployment is not None:
        print(f"deployment: {args.export_deployment} "
              f"(config {config_to_string(deployment.config)})")
    if result.resumed:
        print(f"resumed from artifacts: {', '.join(sorted(result.resumed))}")
    log = result.train_log
    print(f"supernet: {log.steps} steps, {log.wall_seconds:.1f}s"
          f"{' (restored)' if 'train' in result.resumed else ''}")
    _print_summary_rows(result.summary())
    for key, design in result.designs.items():
        print(f"\ngenerated design [{key}]")
        print(design.report.render())
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, aims=list(args.aims),
                           population=args.population,
                           generations=args.generations)
    # Search-only pipeline: no Phase-4 generation (use `run`/`generate`).
    pipeline = Pipeline([SpecifyStage(), TrainStage(), SearchStage()])
    runner = Runner(spec, store_root=args.store, pipeline=pipeline)
    ctx = runner.ctx
    space = SpecifyStage().execute(ctx)
    print(f"search space: {space}")
    result = runner.run()
    log = result.train_log
    print(f"supernet trained: {log.steps} steps, "
          f"{log.wall_seconds:.1f}s")
    _print_summary_rows(result.summary())
    return 0


async def _drive_service(service, requests: List[np.ndarray]):
    """Submit ``requests`` concurrently; return posteriors or sheds.

    Shed errors (deadline, admission, backpressure) come back in the
    result list instead of aborting the whole demo wave — under a
    fault plan or a tight deadline, shedding is expected behavior.
    """
    from repro.serve import ShedError

    async with service:
        outcomes = await asyncio.gather(
            *(service.predict(images) for images in requests),
            return_exceptions=True)
    for outcome in outcomes:
        if isinstance(outcome, BaseException) and not isinstance(
                outcome, ShedError):
            raise outcome
    return outcomes


def cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the other subcommands never pay the serve
    # imports (and vice versa on a stripped deployment host).
    from repro.serve import Deployment, UncertaintyService

    if args.deployment:
        deployment = Deployment.load(args.deployment)
    else:
        deployment = Deployment.from_run(args.run_dir, aim=args.aim)
    kernel = None
    if args.backend == "fixed" and args.deployment:
        # Reuse a `repro compile` artifact when the deployment
        # directory holds one; otherwise the service compiles inline.
        from repro.api import ArtifactStore
        from repro.hw.compile import KERNEL_ARTIFACT, load_kernel
        store = ArtifactStore(args.deployment)
        if store.has(KERNEL_ARTIFACT):
            kernel = load_kernel(store, deployment)
    fault_plan = None
    if args.fault_plan:
        from repro.faults.plan import FaultPlan
        fault_plan = FaultPlan.load(args.fault_plan)
    num_requests = 1 if args.smoke else max(1, args.requests)
    rng = np.random.default_rng(args.seed)
    requests = [
        rng.normal(size=(1,) + deployment.input_shape).astype(np.float32)
        for _ in range(num_requests)
    ]
    service = UncertaintyService(
        deployment,
        max_batch_rows=args.batch_rows,
        max_wait_ms=args.max_wait_ms,
        max_queue_rows=max(args.batch_rows, num_requests),
        num_samples=args.samples,
        backend=args.backend,
        kernel=kernel,
        replicas=max(0, args.replicas),
        replica_timeout_s=args.replica_timeout_s,
        deadline_ms=args.deadline_ms,
        fault_plan=fault_plan)
    # service.engine is None on the fixed backend: no float MC engine
    # runs there, and pretending one does misleads operators.
    print(f"deployment: model={deployment.spec.model} "
          f"config={config_to_string(deployment.config)} "
          f"T={service.num_samples} "
          f"engine={service.engine} "
          f"backend={service.backend} "
          f"replicas={service.replicas} "
          f"fixed_point=<{deployment.fixed_point.total_bits},"
          f"{deployment.fixed_point.fraction_bits}>")
    posteriors = asyncio.run(_drive_service(service, requests))
    for index, posterior in enumerate(posteriors):
        if isinstance(posterior, BaseException):
            print(f"request {index}: SHED "
                  f"({type(posterior).__name__}: {posterior})")
            continue
        print(f"request {index}: class={int(posterior.predictions[0])} "
              f"entropy={float(posterior.predictive_entropy[0]):.4f} "
              f"mutual_info={float(posterior.mutual_information[0]):.4f}")
    stats = service.stats()
    print(f"served {stats['requests']} request(s) in {stats['batches']} "
          f"fused batch(es), coalesce ratio "
          f"{stats['coalesce_ratio']:.2f}, "
          f"p50={stats['latency_p50_ms']:.1f}ms "
          f"p99={stats['latency_p99_ms']:.1f}ms")
    # The degradation ladder, one honest line: every distinct way the
    # service sheds load, plus the breaker's verdict on the pool.
    breaker = stats.get("breaker") or {}
    print(f"degradation: degraded={stats['degraded']} "
          f"rejected={stats['rejected']} "
          f"shed_deadline={stats['shed_deadline']} "
          f"shed_load={stats['shed_load']} "
          f"shed_stopped={stats['shed_stopped']} "
          f"breaker={breaker.get('state', 'n/a')} "
          f"trips={breaker.get('trips', 0)} "
          f"fallbacks={stats['breaker_fallbacks']}")
    injector = stats.get("fault_injector")
    if injector:
        print(f"fault plan: fired={injector['fired']} "
              f"pending={injector['pending']}")
        for site, visit, kind, param in injector["events"]:
            print(f"  fired {kind}@{site} visit={visit} param={param}")
    pool = stats.get("replicas")
    if pool:
        # Stats render after the graceful drain, when every worker has
        # been reaped on purpose — DEAD only means dead mid-flight.
        workers = ", ".join(
            f"#{w['index']}:{w['shards']} shard(s) "
            f"q={w['queue_depth']}/{w['peak_queue_depth']}"
            f"{' DEAD' if pool['running'] and not w['alive'] else ''}"
            for w in pool["workers"])
        print(f"replica pool: axis={pool['axis']} "
              f"shared={pool['shared_bytes']} bytes "
              f"redispatches={pool['redispatches']} "
              f"injected_faults={pool['injected_faults']} "
              f"fallbacks={pool['fallbacks']} [{workers}]")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    # Lazy imports, mirroring cmd_serve: chaos builds on the serving
    # stack, which the other subcommands never need.
    from repro.faults import chaos
    from repro.faults.plan import FaultPlan
    from repro.serve import Deployment

    if args.plan:
        plan = FaultPlan.load(args.plan)
    elif args.generate_plan:
        plan = FaultPlan.generate(args.plan_seed)
    else:
        plan = FaultPlan.standard_plan(args.plan_seed)
    if args.emit_plan:
        plan.save(args.emit_plan)
        print(f"wrote fault plan ({len(plan.events)} event(s)) to "
              f"{args.emit_plan}")
        return 0
    if args.deployment:
        deployment = Deployment.load(args.deployment)
    else:
        deployment = Deployment.from_run(args.run_dir, aim=args.aim)

    repeats = max(1, args.repeat)
    reports = []
    for round_index in range(repeats):
        reports.append(chaos.run_soak(
            deployment, plan,
            requests=args.requests, rows=args.rows,
            replicas=max(0, args.replicas), backend=args.backend,
            num_samples=args.samples, deadline_ms=args.deadline_ms,
            replica_timeout_s=args.replica_timeout_s,
            timeout_s=args.timeout_s))
    report = reports[0]
    replay_ok = all(rep.event_log == report.event_log
                    for rep in reports[1:])
    if not replay_ok:
        report.violations.append(
            "fired-event logs diverged across --repeat soak runs — the "
            "fault schedule is not deterministic")
    ok = report.ok and all(rep.ok for rep in reports)

    if args.as_json:
        payload = report.to_dict()
        payload["ok"] = ok
        payload["repeat"] = repeats
        payload["replay_identical"] = replay_ok
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1
    print(f"chaos soak: {args.requests} request(s) x {repeats} run(s), "
          f"{len(plan.events)} planned fault(s), replicas="
          f"{max(0, args.replicas)}")
    print(f"outcomes: completed={report.completed} "
          f"shed={report.shed} dropped={report.dropped} "
          f"mismatched={report.mismatched}")
    print(f"faults: fired={report.fired} pending={report.pending} "
          f"replay_identical={replay_ok}")
    for site, visit, kind, param in report.event_log:
        print(f"  fired {kind}@{site} visit={visit} param={param}")
    for rep in reports:
        for violation in rep.violations:
            print(f"VIOLATION: {violation}")
    print(f"invariants: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def cmd_compile(args: argparse.Namespace) -> int:
    # Lazy imports, mirroring cmd_serve: compile builds on the serving
    # and hw layers, which the other subcommands never need.
    import os

    from repro.api import ArtifactStore
    from repro.hw.compile import compile_and_report
    from repro.serve import Deployment

    if args.deployment:
        deployment = Deployment.load(args.deployment)
        out = args.out or args.deployment
    else:
        deployment = Deployment.from_run(args.run_dir, aim=args.aim)
        out = args.out or os.path.join(args.run_dir, "compiled")
    from repro.analysis.certify import load_certificate

    store = ArtifactStore(out)
    kernel, report = compile_and_report(
        deployment, store,
        **({} if args.calibration_rows is None
           else {"calibration_rows": args.calibration_rows}),
        fidelity_rows=args.fidelity_rows,
        num_samples=args.samples,
        force=args.force,
        allow_unsafe=args.allow_unsafe)
    certificate = load_certificate(store)
    if args.as_json:
        payload = report.to_dict()
        payload["overflow_certificate"] = certificate.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"compiled: model={deployment.spec.model} "
          f"config={config_to_string(deployment.config)} "
          f"layers={len(kernel.plans)} "
          f"default=<{deployment.fixed_point.total_bits},"
          f"{deployment.fixed_point.fraction_bits}>")
    print(f"artifacts: {store.root}")
    print(certificate.render())
    print(report.render())
    return 0


def cmd_verify_kernel(args: argparse.Namespace) -> int:
    # Lazy imports for the same reason as cmd_compile.
    import os

    from repro.analysis.certify import verify_kernel
    from repro.api import ArtifactStore
    from repro.serve import Deployment

    if args.deployment:
        deployment = Deployment.load(args.deployment)
        out = args.out or args.deployment
    else:
        deployment = Deployment.from_run(args.run_dir, aim=args.aim)
        out = args.out or os.path.join(args.run_dir, "compiled")
    result = verify_kernel(ArtifactStore(out), deployment)
    if args.as_json:
        payload = result.certificate.to_dict()
        payload["stored_certificate"] = (result.stored is not None)
        payload["stale"] = result.stale
        payload["ok"] = result.ok
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if result.ok else 1
    print(result.certificate.render())
    if result.stored is None:
        print("stored certificate: none (derived fresh from the kernel)")
    elif result.stale:
        print("stored certificate: STALE — it does not match the kernel "
              "bytes on disk; recompile with `repro compile --force`")
    else:
        print(f"stored certificate: matches kernel fingerprint "
              f"{result.certificate.kernel_fingerprint[:12]}…")
    print(f"verification: {'OK' if result.ok else 'FAILED'}")
    return 0 if result.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import lint_paths, render_findings

    findings = lint_paths(args.paths or ["src"])
    if args.as_json:
        print(json.dumps([f.to_dict() for f in findings], indent=2,
                         sort_keys=True))
    else:
        print(render_findings(findings))
    return 1 if findings else 0


def cmd_generate(args: argparse.Namespace) -> int:
    ctx = _specified_context(args)
    config = _parse_config(ctx, args.config)
    design, project = build_design(ctx, config, outdir=args.outdir,
                                   project_name=args.project_name)
    print(f"emitted {len(project.files)} files under {args.outdir}/")
    print(design.report.render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    ctx = _specified_context(args)
    config = _parse_config(ctx, args.config)
    design, _ = build_design(ctx, config)
    print(design.report.render())
    return 0


_COMMANDS = {
    "run": cmd_run,
    "serve": cmd_serve,
    "chaos": cmd_chaos,
    "compile": cmd_compile,
    "verify-kernel": cmd_verify_kernel,
    "lint": cmd_lint,
    "search": cmd_search,
    "generate": cmd_generate,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    User errors (bad spec file, torn artifact store) are rendered as a
    one-line ``error:`` message instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (SpecError, ArtifactError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
