"""Deterministic fault injection for the serve/search stack.

``repro.faults`` turns failure into a first-class, replayable input:

* :mod:`repro.faults.plan` — seeded :class:`~repro.faults.plan.FaultPlan`
  / :class:`~repro.faults.plan.FaultInjector`: *which* faults fire,
  *when* (per-site visit counters, never the clock), JSON-pinnable.
* :mod:`repro.faults.runtime` — the named hook points (``SITE_*``) and
  the process-global :func:`~repro.faults.runtime.fire` call that
  production code embeds; a no-op unless an injector is installed.
* :mod:`repro.faults.chaos` — the soak harness behind ``repro chaos``:
  replays a plan against a live :class:`~repro.serve.UncertaintyService`
  and asserts the degradation invariants (zero dropped futures,
  byte-identical responses, reproducible event logs).

``chaos`` imports the serving stack and is intentionally *not*
imported here — the plan/runtime layers stay dependency-free so any
subsystem can hook in without cycles.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    SITE_KINDS,
)
from repro.faults.runtime import (
    SITES,
    SITE_ARTIFACT_WRITE,
    SITE_ASYNC_DISPATCH,
    SITE_CACHE_WRITE,
    SITE_PARALLEL_EVAL,
    SITE_REPLICA_DISPATCH,
    active,
    deactivate,
    fire,
    injected,
    install,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "SITE_KINDS",
    "SITES",
    "SITE_ARTIFACT_WRITE",
    "SITE_ASYNC_DISPATCH",
    "SITE_CACHE_WRITE",
    "SITE_PARALLEL_EVAL",
    "SITE_REPLICA_DISPATCH",
    "active",
    "deactivate",
    "fire",
    "injected",
    "install",
]
