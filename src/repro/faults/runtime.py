"""Process-global fault-injection runtime: named sites, one injector.

Production code never imports fault *plans* — it only calls
:func:`fire` at named hook points (the ``SITE_*`` constants below).
With no injector installed (the default, and the only state production
ever sees) :func:`fire` is a dictionary miss and returns ``None``; the
hook costs nothing and injects nothing.  Tests, the ``repro chaos``
soak and ``repro serve --fault-plan`` install a
:class:`~repro.faults.plan.FaultInjector` for the duration of a run.

This module is dependency-free (stdlib only) so every subsystem —
``serve``, ``search``, ``api`` — can hook into it without import
cycles.  The injector is deliberately a single process-global slot:
faults are injected *parent-side* (the dispatching process decides to
kill/wedge/delay a worker or tear a write), which keeps the fired-event
log in one process and makes the sequence reproducible from the fault
seed alone.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

#: Replica-pool shard dispatch (``serve/replicas.py``).  Kinds:
#: ``kill`` (SIGKILL the target worker), ``wedge`` (worker stops
#: responding for ``param`` seconds), ``slow`` (worker delays its reply
#: by ``param`` seconds).
SITE_REPLICA_DISPATCH = "serve.replicas.dispatch"

#: Async-EA task dispatch (``search/async_ea.py``).  Kinds: ``kill``
#: (SIGKILL the target worker), ``wedge`` (SIGSTOP — the worker stays
#: alive but silent until the wedge sweep reaps it), ``error`` (the
#: dispatched evaluation raises a transient exception).
SITE_ASYNC_DISPATCH = "search.async_ea.dispatch"

#: Fork-pool candidate evaluation (``search/parallel.py``).  Kinds:
#: ``error`` (one candidate's evaluation raises transiently).
SITE_PARALLEL_EVAL = "search.parallel.evaluate"

#: Atomic artifact publication (``api/artifacts.py``).  Kinds:
#: ``torn_write`` (the published file is truncated to ``param`` of its
#: bytes, simulating a torn write that beat the rename).
SITE_ARTIFACT_WRITE = "api.artifacts.write"

#: Evaluation-cache entry publication (``EvaluationCache.put``).
#: Kinds: ``torn_write`` (as above).
SITE_CACHE_WRITE = "api.cache.put"

#: Every named hook point, for plan validation and plan generation.
SITES = (
    SITE_REPLICA_DISPATCH,
    SITE_ASYNC_DISPATCH,
    SITE_PARALLEL_EVAL,
    SITE_ARTIFACT_WRITE,
    SITE_CACHE_WRITE,
)

_active = None


def install(injector) -> None:
    """Activate ``injector`` for this process (replacing any other)."""
    global _active
    _active = injector


def deactivate() -> None:
    """Remove the active injector; all :func:`fire` calls become no-ops."""
    global _active
    _active = None


def active():
    """The installed injector, or ``None``."""
    return _active


def fire(site: str):
    """Record one visit to ``site``; return the fault due at it, if any.

    Returns ``None`` (the overwhelmingly common case — always, with no
    injector installed) or the :class:`~repro.faults.plan.FaultEvent`
    scheduled for exactly this visit.  Visit counters are per-site, so
    the decision is a pure function of (plan, call sequence) — never of
    the clock.
    """
    if _active is None:
        return None
    return _active.fire(site)


@contextmanager
def injected(injector) -> Iterator[None]:
    """Install ``injector`` for the duration of a ``with`` block."""
    previous = _active
    install(injector)
    try:
        yield
    finally:
        install(previous)


__all__ = [
    "SITES",
    "SITE_REPLICA_DISPATCH",
    "SITE_ASYNC_DISPATCH",
    "SITE_PARALLEL_EVAL",
    "SITE_ARTIFACT_WRITE",
    "SITE_CACHE_WRITE",
    "active",
    "deactivate",
    "fire",
    "injected",
    "install",
]
