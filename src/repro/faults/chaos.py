"""Chaos soak: replay a fault plan against a live serving stack.

The executable form of the resilience contract.  :func:`run_soak`
stands up a real :class:`~repro.serve.service.UncertaintyService`
(replica pool and all), installs a deterministic
:class:`~repro.faults.plan.FaultPlan`, pushes a seeded request load
through it, and checks the invariants that define "graceful" under
fault injection:

* **No dropped, duplicated or reordered futures.**  Every submitted
  request resolves — with a response or a distinct shed error — and
  every response covers exactly its own request's rows.
* **Byte-identity whenever a response is produced.**  A response under
  faults equals, byte for byte, the fault-free serving result for the
  same rows.  Degradation changes *whether* and *when* you get an
  answer, never *what* the answer is.
* **Honest accounting.**  Every shed has a distinct counter in
  ``stats()``, and the observed outcome tally matches the counters
  exactly — nothing fails silently.
* **Determinism.**  The injector's fired-event log is a pure function
  of the plan; ``repro chaos --repeat`` replays the soak and demands
  identical logs.

The soak fixes ``max_batch_rows == rows`` with uniform request sizes,
so every fused batch is exactly one request and per-request fault-free
references stay valid under arbitrary concurrency.

Layering: this module imports :mod:`repro.serve` and therefore is
**not** re-exported from ``repro.faults`` — import it directly
(``from repro.faults import chaos``), as the CLI does.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.serve.scheduler import (
    BackpressureError,
    DeadlineExceeded,
    OverloadShedError,
    ServiceStoppedError,
)
from repro.serve.service import UncertaintyService
from repro.utils.rng import derive_seed, new_rng

#: Arrays a byte-identity check compares between two posterior slices.
_FIELDS = ("mean_probs", "predictions", "predictive_entropy",
           "mutual_information")


def _identical(response, reference) -> bool:
    """True when two posterior slices are byte-identical."""
    for name in _FIELDS:
        ours = getattr(response, name)
        theirs = getattr(reference, name)
        if (ours.shape != theirs.shape or ours.dtype != theirs.dtype
                or ours.tobytes() != theirs.tobytes()):
            return False
    return True


def make_requests(deployment, *, requests: int, rows: int,
                  seed: int = 0) -> List[np.ndarray]:
    """Seeded uniform-size request batches for one soak run."""
    rng = new_rng(derive_seed(seed, zlib.crc32(b"chaos-requests")))
    shape = (rows,) + deployment.input_shape
    return [rng.normal(size=shape).astype(np.float32)
            for _ in range(requests)]


@dataclass
class ChaosReport:
    """Outcome of one chaos soak run.

    ``violations`` lists every broken invariant in plain words; an
    empty list (``ok``) is the pass criterion the CLI and CI gate on.
    """

    requests: int
    completed: int
    shed: Dict[str, int]
    dropped: int
    mismatched: int
    fired: int
    pending: int
    event_log: Tuple[Tuple[str, int, str, float], ...]
    stats: Dict[str, object]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "requests": self.requests,
            "completed": self.completed,
            "shed": dict(self.shed),
            "dropped": self.dropped,
            "mismatched": self.mismatched,
            "fired": self.fired,
            "pending": self.pending,
            "event_log": [list(event) for event in self.event_log],
            "violations": list(self.violations),
            "stats": _jsonable(self.stats),
        }


def _jsonable(value):
    """Round numpy scalars/arrays in a stats tree into JSON types."""
    if isinstance(value, dict):
        return {key: _jsonable(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(entry) for entry in value]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


async def _soak(deployment, plan: FaultPlan, *, requests: int, rows: int,
                replicas: int, backend: str, num_samples: Optional[int],
                deadline_ms: Optional[float], replica_timeout_s: float,
                timeout_s: float) -> ChaosReport:
    # Fault-free references first: one request per fused batch, served
    # inline with no injector, gives the byte-exact answer every
    # faulted response must reproduce.
    payloads = make_requests(deployment, requests=requests, rows=rows,
                             seed=plan.seed)
    reference_service = UncertaintyService(
        deployment, max_batch_rows=rows, max_wait_ms=1.0,
        max_queue_rows=max(rows, rows * requests),
        num_samples=num_samples, backend=backend)
    references = []
    async with reference_service:
        for payload in payloads:
            references.append(await reference_service.predict(payload))

    injector = plan.injector()
    service = UncertaintyService(
        deployment, max_batch_rows=rows, max_wait_ms=1.0,
        max_queue_rows=max(rows, rows * requests),
        num_samples=num_samples, backend=backend,
        replicas=replicas, replica_timeout_s=replica_timeout_s,
        deadline_ms=deadline_ms, fault_plan=injector)
    outcomes: List[object] = []
    async with service:
        try:
            outcomes = await asyncio.wait_for(
                asyncio.gather(
                    *(service.predict(payload) for payload in payloads),
                    return_exceptions=True),
                timeout=timeout_s)
        except asyncio.TimeoutError:
            outcomes = []
        stats = service.stats()

    shed: Dict[str, int] = {
        "backpressure": 0, "deadline": 0, "load": 0, "stopped": 0}
    completed = 0
    mismatched = 0
    unexpected: List[str] = []
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, DeadlineExceeded):
            shed["deadline"] += 1
        elif isinstance(outcome, OverloadShedError):
            shed["load"] += 1
        elif isinstance(outcome, ServiceStoppedError):
            shed["stopped"] += 1
        elif isinstance(outcome, BackpressureError):
            shed["backpressure"] += 1
        elif isinstance(outcome, BaseException):
            unexpected.append(
                f"request {index}: {type(outcome).__name__}: {outcome}")
        else:
            completed += 1
            if not _identical(outcome, references[index]):
                mismatched += 1

    violations: List[str] = []
    dropped = requests - len(outcomes)
    if dropped:
        violations.append(
            f"{dropped} request future(s) never resolved within "
            f"{timeout_s:.1f}s — dropped futures")
    for message in unexpected:
        violations.append(f"non-shed exception surfaced: {message}")
    if mismatched:
        violations.append(
            f"{mismatched} response(s) were not byte-identical to "
            f"fault-free serving")
    total_shed = sum(shed.values())  # repro: allow[unordered-float-sum] — int counters, order-free
    if outcomes and completed + total_shed + len(unexpected) != requests:
        violations.append("request outcomes do not tally")
    # Honest accounting: each observed shed class must match its
    # distinct stats counter exactly.
    counter_map = {
        "deadline": "shed_deadline",
        "load": "shed_load",
        "stopped": "shed_stopped",
        "backpressure": "rejected",
    }
    for kind, stat_key in counter_map.items():
        if shed[kind] != stats.get(stat_key):
            violations.append(
                f"stats()[{stat_key!r}] = {stats.get(stat_key)} but "
                f"{shed[kind]} {kind} shed(s) were observed")

    return ChaosReport(
        requests=requests,
        completed=completed,
        shed=shed,
        dropped=dropped,
        mismatched=mismatched,
        fired=injector.fired,
        pending=injector.pending,
        event_log=injector.event_log(),
        stats=stats,
        violations=violations,
    )


def run_soak(deployment, plan: FaultPlan, *, requests: int = 24,
             rows: int = 4, replicas: int = 2, backend: str = "float",
             num_samples: Optional[int] = None,
             deadline_ms: Optional[float] = None,
             replica_timeout_s: float = 2.0,
             timeout_s: float = 120.0) -> ChaosReport:
    """Replay ``plan`` against a live service and audit the invariants.

    Args:
        deployment: serving artifact under test.
        plan: the deterministic fault schedule to install.
        requests: concurrent uniform-size requests to push through.
        rows: rows per request — also the fused batch bound, so each
            fused batch is exactly one request (the byte-identity
            references stay valid under concurrency).
        replicas: worker processes behind the batcher; ``0`` exercises
            the inline path only (kill/wedge events become no-ops).
        backend: ``"float"`` or ``"fixed"``.
        num_samples: MC passes override (deployment default otherwise).
        deadline_ms: per-request deadline budget for the soak traffic.
        replica_timeout_s: shard round-trip bound — kept small so a
            wedged replica is declared dead and recovered promptly.
        timeout_s: hard wall bound on the whole request wave; futures
            unresolved past it count as *dropped* (an invariant
            violation, never a hang).

    Returns a :class:`ChaosReport`; ``report.ok`` is the gate.
    """
    return asyncio.run(_soak(
        deployment, plan, requests=int(requests), rows=int(rows),
        replicas=int(replicas), backend=backend, num_samples=num_samples,
        deadline_ms=deadline_ms, replica_timeout_s=float(replica_timeout_s),
        timeout_s=float(timeout_s)))


__all__ = ["ChaosReport", "make_requests", "run_soak"]
