"""Seeded fault plans: deterministic chaos as data.

A :class:`FaultPlan` is a finite list of :class:`FaultEvent` records —
*"on the 7th shard dispatch, SIGKILL the target replica; on the 3rd
cache put, tear the write at 40% of its bytes"*.  Plans are a pure
function of a fault seed (:meth:`FaultPlan.generate` draws every event
from :func:`repro.utils.rng.new_rng` over a derived seed — no wall
clock, no OS entropy), round-trip through JSON for pinning in CI, and
execute through a :class:`FaultInjector` whose firing decisions depend
only on per-site visit counters.  Replaying the same plan against the
same workload therefore reproduces the identical fault sequence, which
is what lets the ``repro chaos`` soak assert byte-identity instead of
merely "it didn't crash".

Sites and their admissible fault kinds are declared in
:data:`SITE_KINDS`; the hook points themselves live next to the code
they perturb (see :mod:`repro.faults.runtime`).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.faults.runtime import (
    SITES,
    SITE_ARTIFACT_WRITE,
    SITE_ASYNC_DISPATCH,
    SITE_CACHE_WRITE,
    SITE_PARALLEL_EVAL,
    SITE_REPLICA_DISPATCH,
)
from repro.utils.rng import derive_seed, new_rng

#: Fault kinds the injector understands.
FAULT_KINDS = ("kill", "wedge", "slow", "torn_write", "error")

#: Admissible kinds per hook site.  ``param`` semantics by kind:
#: ``slow``/``wedge`` — seconds of delay/unresponsiveness;
#: ``torn_write`` — fraction of bytes that survive (``0 <= p < 1``);
#: ``kill``/``error`` — unused (0.0).
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    SITE_REPLICA_DISPATCH: ("kill", "wedge", "slow"),
    SITE_ASYNC_DISPATCH: ("kill", "wedge", "error"),
    SITE_PARALLEL_EVAL: ("error",),
    SITE_ARTIFACT_WRITE: ("torn_write",),
    SITE_CACHE_WRITE: ("torn_write",),
}

FAULT_PLAN_VERSION = 1


class FaultPlanError(ValueError):
    """A fault plan is malformed (unknown site/kind, bad event)."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *at visit ``visit`` of ``site``, do ``kind``*.

    ``visit`` is the 0-based index of the :func:`repro.faults.runtime.fire`
    call at which the event triggers (the 0th visit is the first).
    """

    site: str
    visit: int
    kind: str
    param: float = 0.0

    def validate(self) -> None:
        if self.site not in SITE_KINDS:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(SITE_KINDS)}")
        if self.kind not in SITE_KINDS[self.site]:
            raise FaultPlanError(
                f"fault kind {self.kind!r} is not admissible at "
                f"{self.site!r} (allowed: {SITE_KINDS[self.site]})")
        if not isinstance(self.visit, int) or self.visit < 0:
            raise FaultPlanError(
                f"visit must be a non-negative int, got {self.visit!r}")
        if self.kind == "torn_write" and not 0.0 <= self.param < 1.0:
            raise FaultPlanError(
                f"torn_write param must be in [0, 1), got {self.param}")
        if self.kind in ("slow", "wedge") and self.param < 0:
            raise FaultPlanError(
                f"{self.kind} param must be >= 0 seconds, got {self.param}")

    def to_dict(self) -> Dict[str, object]:
        return {"site": self.site, "visit": self.visit,
                "kind": self.kind, "param": self.param}

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "FaultEvent":
        try:
            event = cls(site=str(record["site"]),
                        visit=int(record["visit"]),  # type: ignore[arg-type]
                        kind=str(record["kind"]),
                        param=float(record.get("param", 0.0)))  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault event {record!r}: {exc}")
        event.validate()
        return event


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated set of :class:`FaultEvent` records.

    At most one event per ``(site, visit)`` — the injector's firing
    rule is a dictionary lookup, so duplicates would be ambiguous and
    are rejected at construction.
    """

    events: Tuple[FaultEvent, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        seen = set()
        for event in self.events:
            event.validate()
            key = (event.site, event.visit)
            if key in seen:
                raise FaultPlanError(
                    f"duplicate fault event for site={event.site!r} "
                    f"visit={event.visit}")
            seen.add(key)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, seed: int, *,
                 sites: Optional[Sequence[str]] = None,
                 events_per_site: int = 2,
                 max_visit: int = 24,
                 slow_s: float = 0.02,
                 wedge_s: float = 30.0) -> "FaultPlan":
        """Draw a plan as a pure function of ``seed``.

        For each site, ``events_per_site`` distinct visit indices in
        ``[0, max_visit)`` are drawn along with an admissible kind.
        ``slow_s`` bounds injected reply delays (drawn uniformly in
        ``(0, slow_s]``) and ``wedge_s`` is the unresponsive period for
        wedge faults — callers tune both against their timeout budget.
        """
        if events_per_site < 0:
            raise FaultPlanError(
                f"events_per_site must be >= 0, got {events_per_site}")
        if max_visit < events_per_site:
            raise FaultPlanError(
                f"max_visit ({max_visit}) must be >= events_per_site "
                f"({events_per_site})")
        chosen = tuple(sites) if sites is not None else SITES
        events: List[FaultEvent] = []
        for site in chosen:
            if site not in SITE_KINDS:
                raise FaultPlanError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{sorted(SITE_KINDS)}")
            rng = new_rng(derive_seed(seed, zlib.crc32(b"fault-plan"),
                                      zlib.crc32(site.encode("utf-8"))))
            visits = sorted(
                int(v) for v in rng.choice(
                    max_visit, size=min(events_per_site, max_visit),
                    replace=False))
            kinds = SITE_KINDS[site]
            for visit in visits:
                kind = kinds[int(rng.integers(len(kinds)))]
                if kind == "slow":
                    param = float(rng.uniform(slow_s * 0.25, slow_s))
                elif kind == "wedge":
                    param = float(wedge_s)
                elif kind == "torn_write":
                    param = float(rng.uniform(0.0, 0.9))
                else:
                    param = 0.0
                events.append(FaultEvent(site, visit, kind, param))
        return cls(events=tuple(events), seed=int(seed))

    @classmethod
    def standard_plan(cls, seed: int = 0) -> "FaultPlan":
        """The pinned soak plan used by CI and ``bench_resilience``.

        Covers every serve-stack fault kind at small visit indices so a
        smoke-scale request stream reaches all of them.
        """
        events = (
            FaultEvent(SITE_REPLICA_DISPATCH, 2, "slow", 0.01),
            FaultEvent(SITE_REPLICA_DISPATCH, 5, "kill"),
            FaultEvent(SITE_REPLICA_DISPATCH, 9, "wedge", 30.0),
            FaultEvent(SITE_REPLICA_DISPATCH, 14, "kill"),
            FaultEvent(SITE_ARTIFACT_WRITE, 0, "torn_write", 0.5),
            FaultEvent(SITE_CACHE_WRITE, 1, "torn_write", 0.25),
        )
        base = cls(events=events, seed=0)
        if seed == 0:
            return base
        # A non-zero seed perturbs the visit schedule deterministically
        # while keeping the kind coverage of the standard plan.
        rng = new_rng(derive_seed(seed, zlib.crc32(b"fault-plan-standard")))
        shifted = []
        used = set()
        for event in base.events:
            visit = event.visit
            while True:
                candidate = visit + int(rng.integers(0, 4))
                if (event.site, candidate) not in used:
                    break
                visit += 1
            used.add((event.site, candidate))
            shifted.append(FaultEvent(event.site, candidate, event.kind,
                                      event.param))
        return cls(events=tuple(shifted), seed=int(seed))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        version = payload.get("version")
        if version != FAULT_PLAN_VERSION:
            raise FaultPlanError(
                f"unsupported fault-plan version {version!r} "
                f"(expected {FAULT_PLAN_VERSION})")
        raw_events = payload.get("events")
        if not isinstance(raw_events, list):
            raise FaultPlanError("fault plan 'events' must be a list")
        events = tuple(FaultEvent.from_dict(record) for record in raw_events)
        return cls(events=events, seed=int(payload.get("seed", 0)))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.from_json(fh.read())
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def injector(self) -> "FaultInjector":
        return FaultInjector(self)

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({event.site for event in self.events}))


class FaultInjector:
    """Replays a :class:`FaultPlan` against per-site visit counters.

    The injector is the only mutable piece of the fault subsystem: it
    counts :meth:`fire` calls per site and hands back the event (if
    any) scheduled for that exact visit.  ``log`` accumulates fired
    events in firing order — two runs of the same workload under the
    same plan produce equal logs, and the chaos soak asserts exactly
    that.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._schedule: Dict[str, Dict[int, FaultEvent]] = {}
        for event in plan.events:
            self._schedule.setdefault(event.site, {})[event.visit] = event
        self._visits: Dict[str, int] = {}
        self.log: List[FaultEvent] = []

    def fire(self, site: str) -> Optional[FaultEvent]:
        """Count one visit to ``site``; return the fault due, if any."""
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        event = self._schedule.get(site, {}).get(visit)
        if event is not None:
            self.log.append(event)
        return event

    def visits(self, site: str) -> int:
        """How many times ``site`` has been visited."""
        return self._visits.get(site, 0)

    @property
    def fired(self) -> int:
        return len(self.log)

    @property
    def pending(self) -> int:
        """Scheduled events whose visit has not been reached yet."""
        return sum(
            1
            for site, by_visit in self._schedule.items()
            for visit in by_visit
            if visit >= self._visits.get(site, 0))

    def event_log(self) -> Tuple[Tuple[str, int, str, float], ...]:
        """The fired sequence as plain tuples (order-preserving)."""
        return tuple((e.site, e.visit, e.kind, e.param) for e in self.log)

    def reset(self) -> None:
        """Forget all visits and fired events (fresh replay)."""
        self._visits.clear()
        self.log.clear()


def events_from_dicts(records: Iterable[Dict[str, object]]
                      ) -> Tuple[FaultEvent, ...]:
    """Validate a list of plain dicts into events (CLI helper)."""
    return tuple(FaultEvent.from_dict(record) for record in records)


__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_VERSION",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "SITE_KINDS",
    "events_from_dicts",
]
